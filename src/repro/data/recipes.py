"""Recipes for the paper's six evaluation datasets.

Each recipe builds a :class:`~repro.data.dataset.FeaturizedDataset` whose
task type, class balance, document shape, and metric mirror the corpus used
in the paper (Table 1), at one of three scales:

* ``"paper"`` — the paper's exact split sizes (Table 1),
* ``"bench"`` — ~10x reduction, the default for the benchmark harness,
* ``"tiny"`` — a few hundred examples, for unit/integration tests.

The substitution of synthetic corpora for the public datasets is documented
in DESIGN.md; the generator reproduces the structural properties (category
clusters, globally- and locally-reliable cues) that the paper's methods
exploit.
"""

from __future__ import annotations

from collections.abc import Callable

from repro.data import wordbanks as wb
from repro.data.minting import expand_bank
from repro.data.dataset import FeaturizedDataset, featurize_corpus
from repro.data.growth import grow_corpus
from repro.data.synthetic import ClusterSpec, CorpusGenerator, CorpusSpec
from repro.utils.rng import stable_hash_seed

#: Total corpus sizes per scale.  Paper sizes reproduce Table 1 after the
#: 80/10/10 split (e.g. Amazon 14,400/1,800/1,800 -> 18,000 total).
SCALE_SIZES = {
    "amazon": {"paper": 18_000, "bench": 1_500, "tiny": 300},
    "yelp": {"paper": 25_000, "bench": 1_500, "tiny": 300},
    "imdb": {"paper": 25_000, "bench": 1_500, "tiny": 300},
    "youtube": {"paper": 1_956, "bench": 1_000, "tiny": 300},
    "sms": {"paper": 5_572, "bench": 1_500, "tiny": 300},
    "vg": {"paper": 6_354, "bench": 1_200, "tiny": 300},
}

SCALES = ("paper", "bench", "tiny")


#: Skewed cluster weights: a couple of dominant clusters plus small ones,
#: the regime where random development-data sampling wastes user effort on
#: already-covered regions (paper Fig. 6).  Index-aligned with each
#: recipe's cluster order; trailing clusters default to the last weight.
CLUSTER_WEIGHTS = {
    "amazon": (0.40, 0.30, 0.18, 0.12),
    "yelp": (0.52, 0.28, 0.20),
    "imdb": (0.62, 0.38),
    "youtube": (0.60, 0.40),
    "sms": (0.68, 0.32),
    "vg": (0.50, 0.30, 0.20),
}


#: Word-bank size targets after minted-word expansion.  Real corpora have
#: thousands of distinct tokens each covering a percent or two of
#: documents; without the expansion every keyword LF covers 10-25% of the
#: corpus and coverage saturates within ten iterations, collapsing the
#: 50-iteration interactive regime the paper studies.  Short-document
#: datasets use smaller banks so per-word document frequencies stay above
#: the vocabulary cutoff.
BANK_TARGETS = {
    "long": {"common": 300, "marker": 120, "global": 80, "local": 30},
    # Spam/relation tasks keep their curated cue banks unexpanded (target 0
    # = no padding): real spam trigger vocabularies are *concentrated* — a
    # handful of words like "call"/"free" cover a large share of the spam
    # class — and diluting them starves the minority class of coverage.
    "short": {"common": 200, "marker": 80, "global": 0, "local": 0},
}


def _clusters_from_banks(
    dataset_name: str,
    markers: dict[str, list[str]],
    local_cues: dict[str, dict[str, list[str]]],
    weights: tuple[float, ...],
    targets: dict[str, int],
    taken: set[str],
) -> tuple[ClusterSpec, ...]:
    specs = []
    for idx, (name, words) in enumerate(markers.items()):
        weight = weights[idx] if idx < len(weights) else (weights[-1] if weights else 1.0)
        marker_bank = expand_bank(
            words, targets["marker"],
            seed=stable_hash_seed(dataset_name, "mint-marker", name), taken=taken,
        )
        taken |= set(marker_bank)
        local_pos = expand_bank(
            local_cues[name]["positive"], targets["local"],
            seed=stable_hash_seed(dataset_name, "mint-lpos", name), taken=taken,
        )
        taken |= set(local_pos)
        local_neg = expand_bank(
            local_cues[name]["negative"], targets["local"],
            seed=stable_hash_seed(dataset_name, "mint-lneg", name), taken=taken,
        )
        taken |= set(local_neg)
        specs.append(
            ClusterSpec(
                name=name,
                marker_words=marker_bank,
                local_positive=local_pos,
                local_negative=local_neg,
                weight=weight,
            )
        )
    return tuple(specs)


def _expanded_globals(
    dataset_name: str,
    positive: list[str],
    negative: list[str],
    common: list[str],
    targets: dict[str, int],
) -> tuple[tuple[str, ...], tuple[str, ...], tuple[str, ...], set[str]]:
    """Expand the global cue and common-filler banks; returns taken-set too."""
    taken: set[str] = set(positive) | set(negative) | set(common)
    g_pos = expand_bank(
        positive, targets["global"],
        seed=stable_hash_seed(dataset_name, "mint-gpos"), taken=taken,
    )
    taken |= set(g_pos)
    g_neg = expand_bank(
        negative, targets["global"],
        seed=stable_hash_seed(dataset_name, "mint-gneg"), taken=taken,
    )
    taken |= set(g_neg)
    g_common = expand_bank(
        common, targets["common"],
        seed=stable_hash_seed(dataset_name, "mint-common"), taken=taken,
    )
    taken |= set(g_common)
    return g_pos, g_neg, g_common, taken


def _build(
    spec: CorpusSpec,
    scale: str,
    seed,
    metric: str,
    n_docs: int | None = None,
    grow_from: int | None = None,
) -> FeaturizedDataset:
    if scale not in SCALES:
        raise ValueError(f"unknown scale {scale!r}; choose from {SCALES}")
    if n_docs is None:
        n_docs = SCALE_SIZES[spec.name][scale]
    corpus_seed = stable_hash_seed(spec.name, "corpus", seed)
    split_seed = stable_hash_seed(spec.name, "split", seed)
    if grow_from is not None and grow_from < n_docs:
        base = CorpusGenerator(spec).generate(grow_from, seed=corpus_seed)
        corpus = grow_corpus(
            base, n_docs, seed=stable_hash_seed(spec.name, "grow", seed)
        )
    else:
        corpus = CorpusGenerator(spec).generate(n_docs, seed=corpus_seed)
    min_df = 3 if scale == "paper" else 2
    return featurize_corpus(corpus, metric=metric, min_df=min_df, seed=split_seed)


# --------------------------------------------------------------------- #
# Sentiment classification
# --------------------------------------------------------------------- #
def make_amazon(
    scale: str = "bench",
    seed: int = 0,
    n_docs: int | None = None,
    grow_from: int | None = None,
) -> FeaturizedDataset:
    """Amazon product reviews: 4 product categories, balanced sentiment."""
    targets = BANK_TARGETS["long"]
    g_pos, g_neg, common, taken = _expanded_globals(
        "amazon", wb.SENTIMENT_POSITIVE, wb.SENTIMENT_NEGATIVE, wb.COMMON_FILLER, targets
    )
    clusters = _clusters_from_banks(
        "amazon", wb.AMAZON_CLUSTERS, wb.AMAZON_LOCAL_CUES, CLUSTER_WEIGHTS["amazon"], targets, taken
    )
    spec = CorpusSpec(
        name="amazon",
        clusters=clusters,
        global_positive=g_pos,
        global_negative=g_neg,
        common_words=common,
        positive_ratio=0.5,
        mean_doc_length=24.0,
        # Realistic cue quality: real sentiment words are only moderately
        # reliable (sarcasm, negation, context), which is what leaves the
        # paper's methods headroom over the random baseline.
        global_reliability=0.80,
        local_reliability=0.85,
        local_leak=0.30,
    )
    return _build(spec, scale, seed, metric="accuracy", n_docs=n_docs, grow_from=grow_from)


def make_yelp(
    scale: str = "bench",
    seed: int = 0,
    n_docs: int | None = None,
    grow_from: int | None = None,
) -> FeaturizedDataset:
    """Yelp business reviews: 3 business categories, balanced sentiment."""
    targets = BANK_TARGETS["long"]
    g_pos, g_neg, common, taken = _expanded_globals(
        "yelp", wb.SENTIMENT_POSITIVE, wb.SENTIMENT_NEGATIVE, wb.COMMON_FILLER, targets
    )
    clusters = _clusters_from_banks(
        "yelp", wb.YELP_CLUSTERS, wb.YELP_LOCAL_CUES, CLUSTER_WEIGHTS["yelp"], targets, taken
    )
    spec = CorpusSpec(
        name="yelp",
        clusters=clusters,
        global_positive=g_pos,
        global_negative=g_neg,
        common_words=common,
        positive_ratio=0.5,
        mean_doc_length=30.0,
        # Realistic cue quality: real sentiment words are only moderately
        # reliable (sarcasm, negation, context), which is what leaves the
        # paper's methods headroom over the random baseline.
        global_reliability=0.80,
        local_reliability=0.85,
        local_leak=0.30,
    )
    return _build(spec, scale, seed, metric="accuracy", n_docs=n_docs, grow_from=grow_from)


def make_imdb(
    scale: str = "bench",
    seed: int = 0,
    n_docs: int | None = None,
    grow_from: int | None = None,
) -> FeaturizedDataset:
    """IMDB movie reviews: 2 genre clusters, long documents."""
    targets = BANK_TARGETS["long"]
    g_pos, g_neg, common, taken = _expanded_globals(
        "imdb", wb.SENTIMENT_POSITIVE, wb.SENTIMENT_NEGATIVE, wb.COMMON_FILLER, targets
    )
    clusters = _clusters_from_banks(
        "imdb", wb.IMDB_CLUSTERS, wb.IMDB_LOCAL_CUES, CLUSTER_WEIGHTS["imdb"], targets, taken
    )
    spec = CorpusSpec(
        name="imdb",
        clusters=clusters,
        global_positive=g_pos,
        global_negative=g_neg,
        common_words=common,
        positive_ratio=0.5,
        mean_doc_length=42.0,
        # Realistic cue quality: real sentiment words are only moderately
        # reliable (sarcasm, negation, context), which is what leaves the
        # paper's methods headroom over the random baseline.
        global_reliability=0.80,
        local_reliability=0.85,
        local_leak=0.30,
    )
    return _build(spec, scale, seed, metric="accuracy", n_docs=n_docs, grow_from=grow_from)


# --------------------------------------------------------------------- #
# Spam classification
# --------------------------------------------------------------------- #
def make_youtube(
    scale: str = "bench",
    seed: int = 0,
    n_docs: int | None = None,
    grow_from: int | None = None,
) -> FeaturizedDataset:
    """YouTube comment spam: short comments, roughly balanced classes."""
    targets = BANK_TARGETS["short"]
    g_pos, g_neg, common, taken = _expanded_globals(
        "youtube", wb.SPAM_GLOBAL_POSITIVE, wb.SPAM_GLOBAL_NEGATIVE, wb.COMMON_FILLER, targets
    )
    clusters = _clusters_from_banks(
        "youtube", wb.YOUTUBE_CLUSTERS, wb.YOUTUBE_LOCAL_CUES, CLUSTER_WEIGHTS["youtube"], targets, taken
    )
    spec = CorpusSpec(
        name="youtube",
        clusters=clusters,
        global_positive=g_pos,
        global_negative=g_neg,
        common_words=common,
        positive_ratio=0.49,
        mean_doc_length=12.0,
        p_common=0.34,
        p_marker=0.28,
        p_global=0.20,
        p_local=0.18,
        global_reliability=0.85,
    )
    return _build(spec, scale, seed, metric="accuracy", n_docs=n_docs, grow_from=grow_from)


def make_sms(
    scale: str = "bench",
    seed: int = 0,
    n_docs: int | None = None,
    grow_from: int | None = None,
) -> FeaturizedDataset:
    """SMS spam: heavily imbalanced (~13% spam), evaluated with F1."""
    targets = BANK_TARGETS["short"]
    g_pos, g_neg, common, taken = _expanded_globals(
        "sms", wb.SMS_GLOBAL_POSITIVE, wb.SMS_GLOBAL_NEGATIVE, wb.COMMON_FILLER, targets
    )
    clusters = _clusters_from_banks(
        "sms", wb.SMS_CLUSTERS, wb.SMS_LOCAL_CUES, CLUSTER_WEIGHTS["sms"], targets, taken
    )
    spec = CorpusSpec(
        name="sms",
        clusters=clusters,
        global_positive=g_pos,
        global_negative=g_neg,
        common_words=common,
        positive_ratio=0.13,
        mean_doc_length=11.0,
        p_common=0.34,
        p_marker=0.26,
        p_global=0.22,
        p_local=0.18,
        # Under 13%/87% imbalance even a small wrong-class emission rate
        # destroys the precision of minority-class cues; real spam trigger
        # words ("txt", "won") are near-exclusive to spam, so ham documents
        # get high reliability.  Spam, however, deliberately mimics ham
        # vocabulary ("come", "see", ...), so positive documents leak ham
        # cues — which makes over-generalizing ham LFs conflict on spam,
        # the uncertainty signal SEU and Disagree exploit.
        global_reliability=0.97,
        global_reliability_pos=0.90,
        local_reliability=0.96,
        # Borrowed-cue leakage is essentially off: real SMS spam trigger
        # vocabulary ("xxx", "claim", "urgent") barely occurs in ham, and
        # under heavy imbalance even modest leakage makes every minority
        # cue worse than a coin flip.
        local_leak=0.02,
    )
    return _build(spec, scale, seed, metric="f1", n_docs=n_docs, grow_from=grow_from)


# --------------------------------------------------------------------- #
# Visual relation classification
# --------------------------------------------------------------------- #
def make_vg(
    scale: str = "bench",
    seed: int = 0,
    n_docs: int | None = None,
    grow_from: int | None = None,
) -> FeaturizedDataset:
    """Visual Genome "riding" (+1) vs "carrying" (-1) relation classification.

    Examples are synthetic object-annotation sets (one token per detected
    object); the primitive domain is the object vocabulary, exactly how the
    paper configures VG.  The paper's ResNet features are replaced by TF-IDF
    over object tokens — Nemo only ever consumes (features, primitives), so
    the substitution preserves the exercised code paths (see DESIGN.md).
    """
    targets = BANK_TARGETS["short"]
    g_pos, g_neg, common, taken = _expanded_globals(
        "vg", wb.VG_GLOBAL_POSITIVE, wb.VG_GLOBAL_NEGATIVE, [
            "person", "man", "woman", "child", "shirt", "pants", "shoes",
            "hat", "hand", "arm", "head", "shadow", "sky", "ground",
            "wall", "fence", "light", "window", "door", "pole",
        ], targets
    )
    clusters = _clusters_from_banks(
        "vg", wb.VG_CLUSTERS, wb.VG_LOCAL_CUES, CLUSTER_WEIGHTS["vg"], targets, taken
    )
    spec = CorpusSpec(
        name="vg",
        clusters=clusters,
        global_positive=g_pos,
        global_negative=g_neg,
        common_words=common,
        positive_ratio=0.5,
        mean_doc_length=9.0,
        min_doc_length=3,
        p_common=0.30,
        p_marker=0.30,
        p_global=0.22,
        p_local=0.18,
    )
    return _build(spec, scale, seed, metric="accuracy", n_docs=n_docs, grow_from=grow_from)


#: Registry used by :func:`load_dataset` and the benchmark harness.
DATASET_BUILDERS: dict[str, Callable[..., FeaturizedDataset]] = {
    "amazon": make_amazon,
    "yelp": make_yelp,
    "imdb": make_imdb,
    "youtube": make_youtube,
    "sms": make_sms,
    "vg": make_vg,
}

DATASET_NAMES = tuple(DATASET_BUILDERS)


def load_dataset(
    name: str,
    scale: str = "bench",
    seed: int = 0,
    n_docs: int | None = None,
    grow_from: int | None = None,
) -> FeaturizedDataset:
    """Build a named benchmark dataset.

    Parameters
    ----------
    name:
        One of ``amazon``, ``yelp``, ``imdb``, ``youtube``, ``sms``, ``vg``.
    scale:
        ``"paper"``, ``"bench"`` (default), or ``"tiny"``.
    seed:
        Master seed for corpus generation and splitting.
    n_docs:
        Optional total corpus size overriding the scale's default — used
        by the perf benchmarks to sweep dataset sizes beyond the three
        named scales.
    grow_from:
        Optional base corpus size for sampled growth: generate this many
        documents with the full token-level generator, then grow to
        ``n_docs`` by document bootstrap (:func:`repro.data.growth.
        grow_corpus`).  Ignored unless it is smaller than the target size.
        This is the perf-bench path to 500k+ rows; quality benchmarks
        should leave it unset.
    """
    try:
        builder = DATASET_BUILDERS[name]
    except KeyError:
        raise ValueError(
            f"unknown dataset {name!r}; choose from {sorted(DATASET_BUILDERS)}"
        ) from None
    return builder(scale=scale, seed=seed, n_docs=n_docs, grow_from=grow_from)
