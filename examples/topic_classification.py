"""Multiclass IDP on a 4-topic news classification task.

The paper restricts its exposition to binary tasks; this example exercises
the library's K-class generalization (``repro.multiclass``): an AG-News-
flavoured corpus with four topics (world / sports / business / tech), the
multiclass SEU selector, the Dawid-Skene label model, the contextualized
learning pipeline, and a softmax end model.

Run:  python examples/topic_classification.py
"""

import numpy as np

from repro.multiclass import (
    MCContextualizer,
    MCPercentileTuner,
    MCRandomSelector,
    MCSEUSelector,
    MCSimulatedUser,
    MultiClassSession,
    make_topics_dataset,
)

N_ITERATIONS = 30
EVAL_EVERY = 5


def run_session(dataset, selector, contextualize: bool, seed: int) -> list[float]:
    session = MultiClassSession(
        dataset,
        selector,
        MCSimulatedUser(dataset, accuracy_threshold=0.5, seed=seed),
        contextualizer=MCContextualizer(n_classes=dataset.n_classes) if contextualize else None,
        percentile_tuner=MCPercentileTuner() if contextualize else None,
        seed=seed,
    )
    curve = []
    for i in range(N_ITERATIONS):
        session.step()
        if (i + 1) % EVAL_EVERY == 0:
            curve.append(session.test_score())
    return curve


def main() -> None:
    dataset = make_topics_dataset(n_docs=1500, seed=0, vocab_scale=15)
    print(dataset.describe())
    print(f"topics: {', '.join(f'{k}={name}' for k, name in enumerate(('world', 'sports', 'business', 'tech')))}")
    print()

    methods = {
        "Nemo-MC (SEU + contextualized)": lambda s: run_session(
            dataset, MCSEUSelector(), True, s
        ),
        "Snorkel-MC (random + standard)": lambda s: run_session(
            dataset, MCRandomSelector(), False, s
        ),
    }

    header = "iteration " + " ".join(
        f"{(i + 1) * EVAL_EVERY:>6d}" for i in range(N_ITERATIONS // EVAL_EVERY)
    )
    print(header)
    for name, runner in methods.items():
        curves = np.array([runner(seed) for seed in range(3)])
        mean_curve = curves.mean(axis=0)
        cells = " ".join(f"{v:6.3f}" for v in mean_curve)
        print(f"{name:<32s} {cells}   avg={mean_curve.mean():.3f}")


if __name__ == "__main__":
    main()
