"""A terminal version of the Nemo user interface (paper Fig. 5).

Plays the role of the paper's frontend: each iteration shows you the
selected development example, you pick a label and a primitive (by number),
and Nemo creates the LF, contextualizes it, and refits the models — the
full IDP loop with *you* as the user instead of the oracle simulation.

Run:  python examples/interactive_cli.py           # interactive
      python examples/interactive_cli.py --auto    # scripted demo answers
"""

import sys

from repro import SimulatedUser, load_dataset, nemo_config
from repro.core.session import LFDeveloper


class TerminalUser(LFDeveloper):
    """Prompts a human for the label and primitive (Fig. 5's two clicks)."""

    def __init__(self, dataset, auto: bool = False) -> None:
        self.dataset = dataset
        self.auto = auto
        self._oracle = SimulatedUser(dataset, seed=0) if auto else None

    def create_lf(self, dev_index, state):
        text = self.dataset.train.texts[dev_index]
        candidates = state.family.primitives_in(dev_index)
        print("\n" + "=" * 64)
        print(f"Development example #{dev_index}:")
        print(f"  {text}")
        if self.auto:
            lf = self._oracle.create_lf(dev_index, state)
            print(f"[auto] created: {lf.name if lf else 'skip'}")
            return lf
        label = self._ask_label()
        if label is None:
            return None
        primitive_id = self._ask_primitive(state, candidates, label)
        if primitive_id is None:
            return None
        lf = state.family.make(primitive_id, label)
        print(f"created LF: {lf.name}")
        return lf

    def _ask_label(self):
        answer = input("label this example [p]ositive / [n]egative / [s]kip: ").strip().lower()
        if answer.startswith("p"):
            return 1
        if answer.startswith("n"):
            return -1
        return None

    def _ask_primitive(self, state, candidates, label):
        names = [state.family.primitive_names[int(c)] for c in candidates]
        print("candidate primitives:")
        for pos, name in enumerate(names):
            print(f"  [{pos}] {name}")
        while True:
            answer = input(
                "pick a primitive number, 'e N' to explore N's examples, empty to skip: "
            ).strip()
            if answer.startswith("e ") and answer[2:].isdigit():
                pos = int(answer[2:])
                if pos < len(candidates):
                    # Paper Sec. 7: the primitive-based example explorer.
                    for idx in state.family.explore_examples(int(candidates[pos]), k=3):
                        print(f"    ... {self.dataset.train.texts[int(idx)][:90]}")
                continue
            if not answer.isdigit() or int(answer) >= len(candidates):
                return None
            return int(candidates[int(answer)])


def main() -> None:
    auto = "--auto" in sys.argv
    dataset = load_dataset("amazon", scale="tiny", seed=0)
    print(dataset.describe())
    user = TerminalUser(dataset, auto=auto)
    session = nemo_config().create_session(dataset, user, seed=0)
    n_iterations = 6 if auto else 10
    for iteration in range(1, n_iterations + 1):
        session.step()
        print(f"-> after iteration {iteration}: test accuracy = {session.test_score():.3f}")
    print("\nfinal LF set:", [lf.name for lf in session.lfs])


if __name__ == "__main__":
    main()
