"""Spam filtering under heavy class imbalance (the paper's SMS task).

With 13% positives, random development-data sampling shows the user ham
almost every time, so spam LFs — the ones the F1 metric needs — arrive
slowly.  SEU redirects the user to high-uncertainty regions (uncovered or
conflicted messages), which is where the spam lives.  This reproduces the
paper's largest single-dataset win (SMS: Snorkel 0.479 -> Nemo 0.704).

Run:  python examples/spam_filtering.py
"""

from collections import Counter

from repro import SimulatedUser, load_dataset
from repro.core import NemoConfig, nemo_config, snorkel_config


def run(config, dataset, seed: int):
    user = SimulatedUser(dataset, seed=seed)
    session = config.create_session(dataset, user, seed=seed)
    f1_curve = []
    for iteration in range(1, 51):
        session.step()
        if iteration % 10 == 0:
            f1_curve.append(round(session.test_score(), 3))
    polarity = Counter("spam" if lf.label == 1 else "ham" for lf in session.lfs)
    return f1_curve, polarity


def main() -> None:
    dataset = load_dataset("sms", scale="bench", seed=0)
    print(dataset.describe())
    print(f"class balance: {(dataset.train.y == 1).mean():.1%} spam\n")

    for name, config in [
        ("snorkel (random)", snorkel_config()),
        ("seu only", NemoConfig(selector="seu", contextualize=False)),
        ("nemo (full)", nemo_config()),
    ]:
        curve, polarity = run(config, dataset, seed=0)
        print(f"{name:18s} F1 every 10 iters: {curve}")
        print(f"{'':18s} LF polarity mix  : {dict(polarity)}\n")


if __name__ == "__main__":
    main()
