"""Visual relation classification: "riding" vs "carrying" (the paper's VG task).

The Visual Genome setup differs from the text tasks in one important way:
the primitive domain is the set of *object annotations* of each image, not
words (paper Sec. 5.1).  Examples here are synthetic scenes — bags of
object tokens — and an LF reads "if the scene contains a horse, predict
riding".  Everything else (selection, contextualization, learning) is the
identical machinery, which is the point: Nemo is domain-agnostic once a
primitive domain is configured.

Run:  python examples/visual_relations.py
"""

import numpy as np

from repro import SimulatedUser, load_dataset, nemo_config, snorkel_config


def show_scene(dataset, index: int) -> None:
    relation = "riding" if dataset.train.y[index] == 1 else "carrying"
    objects = dataset.train.texts[index].split()
    print(f"  scene {index}: objects={objects[:8]}{'...' if len(objects) > 8 else ''}")
    print(f"           ground-truth relation: {relation}")


def main() -> None:
    dataset = load_dataset("vg", scale="bench", seed=0)
    print(dataset.describe(), "\n")
    print("Sample scenes (object-annotation sets):")
    for index in (0, 1, 2):
        show_scene(dataset, index)

    print("\nInteractive sessions (40 iterations):")
    for name, config in [("snorkel", snorkel_config()), ("nemo", nemo_config())]:
        user = SimulatedUser(dataset, seed=3)
        session = config.create_session(dataset, user, seed=3)
        session.run(40)
        lf_names = [lf.name for lf in session.lfs[:8]]
        print(f"\n{name}: accuracy={session.test_score():.3f}")
        print(f"  first LFs: {lf_names}")

    # The object vocabulary behaves exactly like keywords: objects that
    # strongly indicate a relation make accurate LFs.
    names = dataset.primitive_names
    B, y = dataset.train.B, dataset.train.y
    print("\nObject -> relation reliability (train split):")
    for obj in ("horse", "bicycle", "backpack", "tray", "person"):
        if obj not in names:
            continue
        present = np.asarray(B[:, names.index(obj)].todense()).ravel() > 0
        if present.sum() < 5:
            continue
        riding_rate = (y[present] == 1).mean()
        print(f"  contains {obj:9s} -> riding {riding_rate:.2f} ({int(present.sum())} scenes)")


if __name__ == "__main__":
    main()
