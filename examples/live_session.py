"""Drive a live IDP session over HTTP — the serve-layer walkthrough.

A real Nemo deployment has a human on the other side of a network
boundary answering each "develop an LF from this example" prompt.  The
serve layer makes that concrete: ``repro serve`` hosts many named live
sessions behind a stdlib JSON/HTTP API, snapshotting each one
periodically so a killed server resumes mid-session.  This walkthrough
plays both sides in one process:

1. start the session service in a background thread (in production:
   ``python -m repro serve --root my_sessions``);
2. create a named session from the method registry over HTTP;
3. act as the user: ``propose`` shows the selected example's candidate
   primitives, ``submit``/``decline`` answer with an LF (or without one);
4. hand some iterations to the session's built-in simulated user
   (``step``) and watch the score move;
5. read the server's own telemetry: ``/statusz`` for the operational
   summary and ``/metrics`` for the Prometheus exposition (ENGINE.md §9);
6. restart the manager over the same root to show the session resuming
   from its latest rotated snapshot.

Run:  python examples/live_session.py
"""

import tempfile
import threading
from pathlib import Path

from repro.serve import SessionClient, SessionManager, make_server

N_HUMAN_TURNS = 4
N_SIMULATED_TURNS = 6


def serve_in_thread(root: Path):
    """The server side: a manager plus its threaded HTTP front end."""
    manager = SessionManager(root, snapshot_every=2, keep_last=3)
    server = make_server(manager)  # port=0: the OS picks a free port
    threading.Thread(target=server.serve_forever, daemon=True).start()
    host, port = server.server_address[:2]
    return server, f"http://{host}:{port}"


def act_as_user(client: SessionClient, name: str) -> None:
    """A (scripted) human: read each proposal, answer with a keyword LF."""
    for _ in range(N_HUMAN_TURNS):
        proposal = client.propose(name)
        if proposal["dev_index"] is None or not proposal["primitives"]:
            result = client.decline(name)
            print(f"  it {result['iteration']:>2}: nothing usable -> declined")
            continue
        shown = ", ".join(sorted(proposal["primitives"])[:5])
        # A human would read the example; we key on its first primitive.
        token = sorted(proposal["primitives"])[0]
        label = 1 if len(token) % 2 == 0 else -1
        result = client.submit(name, token, label)
        print(
            f"  it {result['iteration']:>2}: example {proposal['dev_index']} "
            f"[{shown}, ...] -> LF {token!r}->{label:+d} "
            f"({result['n_lfs']} LFs total)"
        )


def main() -> None:
    with tempfile.TemporaryDirectory(prefix="live_session_") as tmp:
        root = Path(tmp)
        server, url = serve_in_thread(root)
        client = SessionClient(url)
        print(f"session service at {url}, root {root}")

        # 2. Create a named session: full Nemo on the tiny Amazon bench.
        info = client.create(
            "demo", method="nemo", dataset="amazon", scale="tiny", seed=7
        )
        print(f"created {info['name']!r}: {info['method']} on {info['dataset']}")

        # 3. The human-in-the-loop turns.
        print(f"\nacting as the user for {N_HUMAN_TURNS} interactions:")
        act_as_user(client, "demo")
        print(f"score after human turns: {client.score('demo')['test_score']:.3f}")

        # 4. Hand the loop to the built-in simulated user.
        print(f"\nletting the simulated user answer {N_SIMULATED_TURNS} proposals:")
        for _ in range(N_SIMULATED_TURNS):
            result = client.step("demo")
            lf = result["lf"]
            lf_str = "-" if lf is None else f"{lf['primitive']!r}->{lf['label']:+d}"
            print(f"  it {result['iteration']:>2}: {result['outcome']:<9} {lf_str}")
        print(f"score after simulated turns: {client.score('demo')['test_score']:.3f}")

        # 5. The server watched itself the whole time: /statusz summarizes
        # command latencies and engine phase attribution, /metrics exposes
        # the same registry as Prometheus text (try `repro metrics <url>`).
        status = client.statusz()
        cmds = status["commands"]
        print("\nserver telemetry (/statusz):")
        for command in sorted(cmds):
            entry = cmds[command]
            print(
                f"  {command:<8} n={entry['count']:<3} "
                f"p50={entry['p50_ms']}ms p99={entry['p99_ms']}ms"
            )
        phases = status["engine"]["phase_seconds"]
        top = max(phases, key=phases.get)
        print(f"  engine compute is dominated by {top!r} ({phases[top]:.2f}s)")
        n_samples = len(
            [l for l in client.metrics().splitlines() if not l.startswith("#")]
        )
        print(f"  /metrics exposes {n_samples} samples")
        before = client.info("demo")
        server.shutdown()
        server.server_close()

        # 6. "Restart": a fresh service over the same root resumes the
        # session from its latest rotated snapshot.
        server, url = serve_in_thread(root)
        client = SessionClient(url)
        after = client.info("demo")
        print(
            f"\nrestarted service: iteration {after['iteration']} restored "
            f"(was {before['iteration']}; snapshots every 2 commits), "
            f"{after['n_checkpoints']} rotated snapshot(s) on disk"
        )
        for line in ("  " + str(s) for s in client.sessions()):
            print(line)
        server.shutdown()
        server.server_close()


if __name__ == "__main__":
    main()
