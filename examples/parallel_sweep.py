"""Run a parallel, crash-resumable experiment sweep — and survive a kill.

The paper's tables are seeds × methods × datasets grids of independent
sessions.  ``repro.sweep`` schedules such a grid on a worker-process pool,
streams one JSON record per finished job into a sharded on-disk store, and
checkpoints in-flight sessions (ENGINE.md §5) so a killed sweep resumes
where it stopped instead of recomputing.  This walkthrough:

1. declares a small Table-5-style grid as a :class:`SweepSpec`;
2. runs it with a budget cut (``max_jobs``) to *simulate a crash*;
3. resumes with a second ``run_sweep`` call on the same directory —
   completed jobs are skipped, and the final results are bit-identical to
   an uninterrupted run;
4. shows the same parallelism inside a single table cell via
   ``evaluate_method(..., jobs=...)``.

Run:  python examples/parallel_sweep.py
"""

import tempfile
from pathlib import Path

from repro.data import load_dataset
from repro.experiments import evaluate_method, make_method
from repro.sweep import SweepSpec, run_sweep

JOBS = 2  # worker processes; bump to your core count


def main() -> None:
    # 1. The grid: 3 selection strategies x 2 seeds on one dataset.
    spec = SweepSpec(
        methods=("seu", "random", "abstain"),
        datasets=("youtube",),
        n_seeds=2,
        n_iterations=15,
        eval_every=5,
        scale="tiny",
    )
    print(f"grid: {len(spec.jobs())} independent jobs")

    with tempfile.TemporaryDirectory() as tmp:
        out = Path(tmp) / "sweep_out"

        # 2. Start the sweep but "crash" after two jobs (max_jobs is the
        #    budget knob; a real crash — SIGKILL, OOM, preemption — leaves
        #    the store in exactly the same shape).
        partial = run_sweep(spec, out, jobs=JOBS, max_jobs=2)
        print(
            f"after the 'crash': ran {len(partial.ran)}, "
            f"{len(partial.pending)} pending"
        )

        # 3. Resume: same spec, same directory.  Completed jobs are
        #    skipped (their records are already streamed to disk); any
        #    checkpointed in-flight session would continue mid-curve.
        report = run_sweep(spec, out, jobs=JOBS)
        print(
            f"after resume: ran {len(report.ran)}, "
            f"skipped {len(report.skipped)}, complete={report.complete}"
        )
        for (dataset, method), result in sorted(report.results.items()):
            print(
                f"  {dataset:>8s} / {method:<8s} "
                f"curve avg {result.summary_mean:.3f} ± {result.summary_std:.3f} "
                f"(final {result.final_mean:.3f} ± {result.final_std:.3f})"
            )

    # 4. The same worker pool drives a single cell: evaluate_method with
    #    jobs=N fans the per-seed sessions out and aggregates a RunResult
    #    bit-identical to the serial path.
    dataset = load_dataset("youtube", scale="tiny", seed=0)
    result = evaluate_method(
        make_method("random"),
        "random",
        dataset,
        n_iterations=15,
        eval_every=5,
        n_seeds=4,
        jobs=JOBS,
    )
    print(
        f"evaluate_method(jobs={JOBS}): random on youtube -> "
        f"{result.summary_mean:.3f} ± {result.summary_std:.3f} over 4 seeds"
    )


if __name__ == "__main__":
    main()
