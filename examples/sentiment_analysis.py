"""Sentiment classification across product categories (the paper's Example 1.1).

Demonstrates the two data phenomena Nemo exploits and how its components
respond to them:

1. cluster-local cue words ("funny" is positive for movies, negative-ish
   for food) make LFs accurate near their development data and noisy far
   away — shown by measuring a "funny"-LF per category;
2. the LF contextualizer turns that lineage into better soft labels;
3. SEU steers development toward under-covered categories.

Run:  python examples/sentiment_analysis.py
"""

import numpy as np

from repro import LFContextualizer, SimulatedUser, load_dataset
from repro.core import NemoConfig
from repro.labelmodel import MetalLabelModel


def inspect_funny_lf(dataset) -> None:
    """Example 1.1: the same keyword LF behaves differently per category."""
    train = dataset.train
    names = dataset.primitive_names
    if "funny" not in names:
        print("('funny' fell below the vocabulary cutoff in this corpus sample)")
        return
    column = np.asarray(train.B[:, names.index("funny")].todense()).ravel() > 0
    print("LF 'funny -> positive', accuracy by product category:")
    for cluster_id, cluster_name in enumerate(dataset.cluster_names):
        mask = column & (train.clusters == cluster_id)
        if mask.sum() >= 5:
            acc = (train.y[mask] == 1).mean()
            print(f"  {cluster_name:12s}: {acc:.2f}  ({int(mask.sum())} reviews)")


def contextualizer_demo(dataset) -> None:
    """Refining LFs around their development data improves the soft labels."""
    user = SimulatedUser(dataset, seed=1)
    cfg = NemoConfig(selector="random", contextualize=False)
    session = cfg.create_session(dataset, user, seed=1)
    session.run(25)
    L = session.L_train
    lineage = session.lineage

    y = dataset.train.y
    standard = MetalLabelModel(class_prior=dataset.label_prior).fit_predict_proba(L)
    refined_votes = LFContextualizer(percentile=35.0).refine(L, lineage, "train")
    refined = MetalLabelModel(class_prior=dataset.label_prior).fit_predict_proba(
        refined_votes
    )
    covered = (L != 0).any(axis=1)

    def acc(soft):
        return (np.where(soft >= 0.5, 1, -1)[covered] == y[covered]).mean()

    print(f"soft-label accuracy, standard pipeline      : {acc(standard):.3f}")
    print(f"soft-label accuracy, contextualized (p=35)  : {acc(refined):.3f}")


def seu_exploration_demo(dataset) -> None:
    """SEU covers the small product categories sooner than random sampling."""
    from collections import Counter

    for selector in ("random", "seu"):
        cfg = NemoConfig(selector=selector, contextualize=False)
        user = SimulatedUser(dataset, seed=2)
        session = cfg.create_session(dataset, user, seed=2)
        session.run(30)
        dev_clusters = dataset.train.clusters[session.lineage.dev_indices]
        counts = Counter(dataset.cluster_names[c] for c in dev_clusters)
        print(f"  {selector:6s} development data per category: {dict(counts)}")


def main() -> None:
    dataset = load_dataset("amazon", scale="bench", seed=0)
    print(dataset.describe(), "\n")
    inspect_funny_lf(dataset)
    print()
    contextualizer_demo(dataset)
    print()
    print("Where does each selector send the user?")
    seu_exploration_demo(dataset)


if __name__ == "__main__":
    main()
