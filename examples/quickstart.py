"""Quickstart: a complete interactive data programming session in ~30 lines.

Builds the Amazon-style benchmark dataset, runs the full Nemo system (SEU
selection + contextualized learning) for 30 interactive iterations with a
simulated user, and prints the learning curve next to the vanilla Snorkel
baseline.

Run:  python examples/quickstart.py
"""

from repro import NemoConfig, SimulatedUser, load_dataset, nemo_config, snorkel_config


def run_session(config: NemoConfig, dataset, seed: int) -> list[float]:
    """Drive one session; returns the test score every 5 iterations."""
    user = SimulatedUser(dataset, seed=seed)
    session = config.create_session(dataset, user, seed=seed)
    scores = []
    for iteration in range(1, 31):
        session.step()
        if iteration % 5 == 0:
            scores.append(session.test_score())
    print(f"  LFs created: {[lf.name for lf in session.lfs[:6]]} ...")
    return scores


def main() -> None:
    dataset = load_dataset("amazon", scale="bench", seed=0)
    print(dataset.describe())

    print("\nNemo (SEU + contextualized learning):")
    nemo_scores = run_session(nemo_config(), dataset, seed=0)
    print("  accuracy every 5 iters:", [round(s, 3) for s in nemo_scores])

    print("\nSnorkel baseline (random selection, standard pipeline):")
    snorkel_scores = run_session(snorkel_config(), dataset, seed=0)
    print("  accuracy every 5 iters:", [round(s, 3) for s in snorkel_scores])

    nemo_avg = sum(nemo_scores) / len(nemo_scores)
    snorkel_avg = sum(snorkel_scores) / len(snorkel_scores)
    print(f"\ncurve average: nemo={nemo_avg:.3f}  snorkel={snorkel_avg:.3f}")


if __name__ == "__main__":
    main()
