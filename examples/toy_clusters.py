"""The paper's Figures 3/6/7 toy: 2-D clusters, rendered in the terminal.

Visualizes (as ASCII) the four-cluster toy dataset and walks through the
two mechanics the paper illustrates with it:

* Figure 6: once the two dominant clusters carry LFs, random sampling
  keeps landing inside them while an uncertainty-driven choice lands in
  the uncovered small clusters.
* Figure 7: two conflicting radius-LFs are resolved by restricting each
  to the neighbourhood of its development point.

Run:  python examples/toy_clusters.py
"""

import numpy as np

from repro.data.synthetic import make_toy_clusters
from repro.utils.rng import ensure_rng


def ascii_plot(X, y, highlight=None, width=56, height=20) -> str:
    """Render labeled 2-D points as a character grid."""
    grid = [[" "] * width for _ in range(height)]
    x0, x1 = X[:, 0].min(), X[:, 0].max()
    y0, y1 = X[:, 1].min(), X[:, 1].max()
    for i, (px, py) in enumerate(X):
        col = int((px - x0) / (x1 - x0 + 1e-9) * (width - 1))
        row = int((1 - (py - y0) / (y1 - y0 + 1e-9)) * (height - 1))
        grid[row][col] = "+" if y[i] == 1 else "-"
    if highlight is not None:
        for i in highlight:
            px, py = X[i]
            col = int((px - x0) / (x1 - x0 + 1e-9) * (width - 1))
            row = int((1 - (py - y0) / (y1 - y0 + 1e-9)) * (height - 1))
            grid[row][col] = "*"
    return "\n".join("".join(row) for row in grid)


def main() -> None:
    X, y, clusters = make_toy_clusters(n_docs=400, n_clusters=4, seed=0)
    print("Toy dataset (+/-: ground truth labels):")
    print(ascii_plot(X, y))

    # --- Figure 6 mechanics -------------------------------------------- #
    rng = ensure_rng(0)
    big = np.isin(clusters, [0, 1])
    covered = big.copy()  # imagine LFs already cover the two big clusters
    uncovered_share = (~covered).mean()
    random_picks = rng.choice(len(y), size=30)
    random_hit_rate = (~covered[random_picks]).mean()
    # an uncertainty-driven selector only considers uncovered points
    uncertain_picks = rng.choice(np.flatnonzero(~covered), size=30)
    print("\nFigure 6 - after covering the two dominant clusters:")
    print(f"  uncovered mass                      : {uncovered_share:.0%}")
    print(f"  random picks landing on uncovered   : {random_hit_rate:.0%}")
    print("  uncertainty-driven picks on uncovered: 100% (by construction)")
    print(ascii_plot(X, y, highlight=uncertain_picks))

    # --- Figure 7 mechanics -------------------------------------------- #
    dev_a = int(np.flatnonzero(clusters == 0)[0])
    dev_b = int(np.flatnonzero(clusters == 1)[0])
    lf_a = np.where(np.linalg.norm(X - X[dev_a], axis=1) < 5.0, y[dev_a], 0)
    lf_b = np.where(np.linalg.norm(X - X[dev_b], axis=1) < 5.0, y[dev_b], 0)
    conflict = (lf_a != 0) & (lf_b != 0) & (lf_a != lf_b)
    print(f"\nFigure 7 - two over-generalized LFs conflict on {conflict.sum()} points")
    for radius in (5.0, 2.0):
        ref_a = np.where(np.linalg.norm(X - X[dev_a], axis=1) < radius, lf_a, 0)
        ref_b = np.where(np.linalg.norm(X - X[dev_b], axis=1) < radius, lf_b, 0)
        votes = ref_a + ref_b  # no overlap after refinement -> plain sum
        labeled = votes != 0
        acc = (np.sign(votes[labeled]) == y[labeled]).mean()
        kind = "unrefined" if radius == 5.0 else "refined (small radius)"
        print(f"  {kind:24s}: label accuracy on covered = {acc:.2f}")


if __name__ == "__main__":
    main()
