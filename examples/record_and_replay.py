"""Record an IDP session, persist it, and re-score it under new pipelines.

This mirrors how the paper evaluates learning-stage alternatives on
human-generated LFs: the user study records one LF sequence per
participant, and "the result for ImplyLoss [is computed] based on LFs
created in the Snorkel user study" (Sec. 5.2).  With ``repro.io`` the same
workflow is three calls: record → save → replay with a different pipeline.

Run:  python examples/record_and_replay.py
"""

import tempfile
from pathlib import Path

from repro import SimulatedUser, load_dataset
from repro.core.context_sequence import ContextSequenceContextualizer
from repro.core.contextualizer import LFContextualizer
from repro.core.session import DataProgrammingSession
from repro.interactive.basic_selectors import RandomSelector
from repro.io import load_transcript, replay_session, save_transcript, transcript_from_session
from repro.labelmodel import make_label_model

N_ITERATIONS = 25


def main() -> None:
    dataset = load_dataset("amazon", scale="tiny", seed=0)

    # 1. A live session: random selection, standard pipeline (= Snorkel).
    live = DataProgrammingSession(
        dataset, RandomSelector(), SimulatedUser(dataset, seed=7), seed=7
    )
    live.run(N_ITERATIONS)
    print(f"live session: {len(live.lfs)} LFs, test score {live.test_score():.3f}")

    # 2. Persist the interaction history.
    with tempfile.TemporaryDirectory() as tmp:
        path = Path(tmp) / "snorkel_session.json"
        save_transcript(
            transcript_from_session(live, metadata={"method": "snorkel", "seed": 7}),
            path,
        )
        print(f"transcript saved to {path.name} ({path.stat().st_size} bytes)")
        transcript = load_transcript(path)

    # 3. Re-score the exact same LF sequence under alternative pipelines.
    pipelines = {
        "standard (as recorded)": {},
        "contextualized (Eq. 4)": {"contextualizer": LFContextualizer(percentile=75.0)},
        "context-sequence (gamma=0.5)": {
            "contextualizer": ContextSequenceContextualizer(gamma=0.5, percentile=75.0)
        },
        "majority-vote label model": {
            "label_model_factory": lambda: make_label_model(
                "majority", class_prior=dataset.label_prior
            )
        },
    }
    print(f"\nre-scoring the recorded {len(transcript)}-LF sequence:")
    for name, kwargs in pipelines.items():
        session = replay_session(transcript, dataset, seed=0, **kwargs)
        print(f"  {name:<32s} test score {session.test_score():.3f}")


if __name__ == "__main__":
    main()
