"""CI smoke for the sweep subsystem: kill a sweep mid-job, resume, verify.

Exercises the full durability story end-to-end on a tiny grid:

1. run one job of the grid to completion, then *crash* a second job
   mid-session (deterministic injection after a checkpoint was written);
2. resume the sweep with ``run_sweep(..., jobs=2)`` on the same store;
3. assert (a) the finished job was **not** recomputed (its record's mtime
   is unchanged), (b) the crashed job **resumed from its checkpoint**
   rather than restarting, and (c) the final results are bit-identical to
   an uninterrupted serial reference run.

Exit code 0 on success; prints the failed assertion otherwise.

Run:  PYTHONPATH=src python tools/sweep_smoke.py
"""

from __future__ import annotations

import sys
import tempfile
from pathlib import Path

REPO_ROOT = Path(__file__).resolve().parent.parent
SRC = REPO_ROOT / "src"
if str(SRC) not in sys.path:
    sys.path.insert(0, str(SRC))

from repro.sweep import ResultStore, SweepSpec, run_sweep  # noqa: E402
from repro.sweep.worker import SweepJobCrash, run_sweep_job  # noqa: E402

SPEC = SweepSpec(
    methods=("random", "seu"),
    datasets=("youtube",),
    n_seeds=2,
    n_iterations=12,
    eval_every=4,
    scale="tiny",
)
CHECKPOINT_EVERY = 5
CRASH_AFTER = 7  # past the first checkpoint at iteration 5


def check(condition: bool, message: str) -> None:
    if not condition:
        print(f"[sweep-smoke] FAILED: {message}")
        raise SystemExit(1)


def main() -> int:
    jobs = SPEC.jobs()
    with tempfile.TemporaryDirectory(prefix="sweep_smoke_") as tmp:
        out = Path(tmp) / "store"
        store = ResultStore(out)
        store.bind_spec(SPEC)

        # Phase 1: one job completes normally, a second is killed mid-run.
        done_job, crash_job = jobs[0], jobs[1]
        run_sweep_job(done_job.to_dict(), str(out), checkpoint_every=CHECKPOINT_EVERY)
        try:
            run_sweep_job(
                crash_job.to_dict(),
                str(out),
                checkpoint_every=CHECKPOINT_EVERY,
                fail_after_iteration=CRASH_AFTER,
            )
        except SweepJobCrash:
            pass
        else:
            check(False, "injected crash did not raise")
        check(
            store.checkpoint_path(crash_job.key).exists(),
            "crashed job left no checkpoint",
        )
        check(
            store.read_result(crash_job.key) is None,
            "crashed job must not have a streamed result",
        )
        done_mtime = store.result_path(done_job.key).stat().st_mtime_ns
        print(
            f"[sweep-smoke] killed {crash_job.key} after iteration {CRASH_AFTER} "
            f"(checkpoint at {CHECKPOINT_EVERY})"
        )

        # Phase 2: resume on a 2-worker pool.
        report = run_sweep(SPEC, out, jobs=2, checkpoint_every=CHECKPOINT_EVERY)
        check(report.complete, f"resume left pending jobs: {report.pending}")
        check(
            done_job.key in report.skipped and done_job.key not in report.ran,
            "completed job was not skipped on resume",
        )
        check(
            store.result_path(done_job.key).stat().st_mtime_ns == done_mtime,
            "completed job's record was rewritten (recomputed)",
        )
        crashed_record = store.read_result(crash_job.key)
        check(
            crashed_record["resumed_from_iteration"] == CHECKPOINT_EVERY,
            f"crashed job resumed from {crashed_record['resumed_from_iteration']}, "
            f"expected {CHECKPOINT_EVERY}",
        )
        check(
            not store.checkpoint_path(crash_job.key).exists(),
            "finished job's checkpoint was not cleared",
        )
        print(
            f"[sweep-smoke] resumed: ran {len(report.ran)}, "
            f"skipped {len(report.skipped)}"
        )

        # Phase 3: bit-identical to an uninterrupted serial reference.
        ref_out = Path(tmp) / "reference"
        reference = run_sweep(SPEC, ref_out, jobs=1)
        ref_store = ResultStore(ref_out)
        for job in jobs:
            a = ref_store.read_result(job.key)
            b = store.read_result(job.key)
            check(
                a["iterations"] == b["iterations"] and a["scores"] == b["scores"],
                f"{job.key}: resumed results differ from uninterrupted serial run",
            )
        check(reference.complete, "reference sweep incomplete")
    print("[sweep-smoke] OK: kill-and-resume completed with no recomputation "
          "and bit-identical results")
    return 0


if __name__ == "__main__":
    raise SystemExit(main())
