"""Duplication guard shim over the ``adapter-budget`` lint rule.

The guard itself now lives in the ``repro lint`` rule registry
(:mod:`repro.analysis.rules.budget`) and runs as part of CI's lint job;
this module keeps the historical entry points working — ``python
tools/adapter_budget.py`` and the ``check()`` function the test suite
imports — by delegating to the rule's single source of truth for the
module list and line budget.
"""

from __future__ import annotations

import sys
from pathlib import Path

REPO_ROOT = Path(__file__).resolve().parent.parent

if str(REPO_ROOT / "src") not in sys.path:
    sys.path.insert(0, str(REPO_ROOT / "src"))

from repro.analysis.rules.budget import ADAPTER_MODULES, LINE_BUDGET  # noqa: E402


def check() -> list[str]:
    """Return one violation message per adapter module over budget."""
    violations = []
    for rel in ADAPTER_MODULES:
        path = REPO_ROOT / rel
        n_lines = len(path.read_text().splitlines())
        if n_lines > LINE_BUDGET:
            violations.append(
                f"{rel}: {n_lines} lines exceeds the {LINE_BUDGET}-line adapter "
                "budget — move the logic into the cardinality-generic core instead"
            )
    return violations


def main() -> int:
    violations = check()
    for message in violations:
        print(f"ADAPTER BUDGET VIOLATION: {message}", file=sys.stderr)
    if not violations:
        print(f"adapter budget OK ({len(ADAPTER_MODULES)} modules <= {LINE_BUDGET} lines)")
    return 1 if violations else 0


if __name__ == "__main__":
    raise SystemExit(main())
