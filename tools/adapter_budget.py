"""Duplication guard: the multiclass adapter modules must stay thin.

The mirror-removal refactor rewrote the formerly duplicated
``repro.multiclass`` subsystems as adapters/re-exports over the
cardinality-generic ``core``/``interactive`` implementations (see
ARCHITECTURE.md).  This guard fails — in CI's lint job and in the test
suite via ``tests/multiclass/test_adapter_budget.py`` — as soon as one of
them grows past a small line budget, which is the tell-tale of logic being
re-duplicated into the adapter layer instead of generalized in ``core``.
"""

from __future__ import annotations

import sys
from pathlib import Path

REPO_ROOT = Path(__file__).resolve().parent.parent

#: Per-module total line budget (blank lines and docstrings included: the
#: point is that these files stay *small*, not merely logic-free).
LINE_BUDGET = 55

ADAPTER_MODULES = (
    "src/repro/multiclass/contextualizer.py",
    "src/repro/multiclass/selection.py",
    "src/repro/multiclass/seu.py",
    "src/repro/multiclass/simulated_user.py",
    "src/repro/multiclass/user_model.py",
    "src/repro/multiclass/utility.py",
)


def check() -> list[str]:
    """Return one violation message per adapter module over budget."""
    violations = []
    for rel in ADAPTER_MODULES:
        path = REPO_ROOT / rel
        n_lines = len(path.read_text().splitlines())
        if n_lines > LINE_BUDGET:
            violations.append(
                f"{rel}: {n_lines} lines exceeds the {LINE_BUDGET}-line adapter "
                "budget — move the logic into the cardinality-generic core instead"
            )
    return violations


def main() -> int:
    violations = check()
    for message in violations:
        print(f"ADAPTER BUDGET VIOLATION: {message}", file=sys.stderr)
    if not violations:
        print(f"adapter budget OK ({len(ADAPTER_MODULES)} modules <= {LINE_BUDGET} lines)")
    return 1 if violations else 0


if __name__ == "__main__":
    raise SystemExit(main())
