"""CI smoke for the serve layer: SIGKILL a live session server, restart, verify.

Exercises the full serve-path durability story end-to-end over real HTTP:

1. start ``repro serve`` as a subprocess and drive a session through the
   propose/submit protocol with a *deterministic* client rule (a pure
   function of each proposal), recording the score curve;
2. SIGKILL the server mid-session, past the last periodic snapshot, so
   un-snapshotted commits are genuinely lost;
3. restart the server over the same root, confirm it resumed from the
   latest **rotated** snapshot, replay the lost iterations with the same
   client rule, and finish the curve;
4. assert the killed-and-restored curve (including the re-recorded
   points) is bit-identical to an uninterrupted reference run of the
   same client against a fresh server, and that rotation kept only
   ``--keep-last`` snapshots;
5. scrape ``/metrics`` twice during the reference run and schema-check
   the exposition (non-empty, expected metric families present, counters
   monotonic across scrapes, ``/statusz`` command counts populated).
   When ``SERVE_SMOKE_METRICS_OUT`` is set, the final metrics + statusz
   snapshot is written there as JSON (CI uploads it as an artifact).

Exit code 0 on success; prints the failed assertion otherwise.

Run:  PYTHONPATH=src python tools/serve_smoke.py
"""

from __future__ import annotations

import json
import os
import signal
import subprocess
import sys
import tempfile
import time
from pathlib import Path

REPO_ROOT = Path(__file__).resolve().parent.parent
SRC = REPO_ROOT / "src"
if str(SRC) not in sys.path:
    sys.path.insert(0, str(SRC))

from repro.obs import parse_prometheus_text  # noqa: E402
from repro.serve import ServeClientError, SessionClient  # noqa: E402

SESSION = "smoke"
CFG = dict(method="snorkel", dataset="amazon", scale="tiny", seed=17)
N_ITERATIONS = 12
EVAL_EVERY = 3
SNAPSHOT_EVERY = 2
KEEP_LAST = 2
KILL_AFTER = 7  # snapshots land at 2,4,6 — commit 7 must be lost


def check(condition: bool, message: str) -> None:
    if not condition:
        print(f"[serve-smoke] FAILED: {message}")
        raise SystemExit(1)


def start_server(root: Path) -> tuple[subprocess.Popen, SessionClient]:
    env = dict(os.environ)
    env["PYTHONPATH"] = str(SRC) + os.pathsep + env.get("PYTHONPATH", "")
    proc = subprocess.Popen(
        [
            sys.executable,
            "-m",
            "repro",
            "serve",
            "--root",
            str(root),
            "--port",
            "0",
            "--snapshot-every",
            str(SNAPSHOT_EVERY),
            "--keep-last",
            str(KEEP_LAST),
        ],
        stdout=subprocess.PIPE,
        text=True,
        env=env,
    )
    line = proc.stdout.readline()  # the CLI's handshake line carries the port
    check(
        "serving sessions on http://" in line,
        f"unexpected server handshake: {line!r}",
    )
    url = line.split("serving sessions on ", 1)[1].split(" ", 1)[0]
    client = SessionClient(url, timeout=60.0)
    deadline = time.monotonic() + 30.0
    while True:
        try:
            client.health()
            return proc, client
        except (ServeClientError, OSError):
            check(time.monotonic() < deadline, "server never became healthy")
            time.sleep(0.1)


def client_rule(proposal: dict, used: set[tuple[str, int]]):
    """Deterministic pure function of (proposal, submitted-so-far).

    Submits the lexicographically smallest unused primitive of the shown
    example — labelled by token-length parity so the vote matrix carries
    both classes and the score curve actually moves — or declines.  Any
    replay of the same proposal stream reproduces the same commands
    bit-for-bit.
    """
    if proposal["dev_index"] is None:
        return None
    for token in sorted(proposal["primitives"]):
        label = 1 if len(token) % 2 == 0 else -1
        if (token, label) not in used:
            return token, label
    return None


def drive(client: SessionClient, curve: dict, kill_proc=None) -> None:
    """Drive SESSION to N_ITERATIONS; record (and cross-check) the curve.

    Starts from whatever iteration the server reports — after a restart
    that is the restored snapshot, and the lost iterations are replayed.
    Re-recorded evaluation points must equal what the first pass saw.
    """
    info = client.info(SESSION)
    iteration = info["iteration"]
    used = {(lf["primitive"], lf["label"]) for lf in info["lfs"]}
    while iteration < N_ITERATIONS:
        proposal = client.propose(SESSION)
        check(proposal["iteration"] == iteration, "proposal iteration drifted")
        choice = client_rule(proposal, used)
        if choice is None:
            result = client.decline(SESSION)
        else:
            token, label = choice
            result = client.submit(SESSION, token, label)
            used.add((token, label))
        iteration = result["iteration"]
        if iteration % EVAL_EVERY == 0 or iteration == N_ITERATIONS:
            score = client.score(SESSION)["test_score"]
            if iteration in curve:
                check(
                    curve[iteration] == score,
                    f"replayed score at iteration {iteration} diverged: "
                    f"{curve[iteration]} != {score}",
                )
            curve[iteration] = score
        if kill_proc is not None and iteration == KILL_AFTER:
            kill_proc.kill()  # SIGKILL: no shutdown hooks, no flushing
            kill_proc.wait()
            return


def final_lfs(client: SessionClient) -> list[tuple[str, int]]:
    return [
        (lf["primitive"], lf["label"]) for lf in client.info(SESSION)["lfs"]
    ]


#: Metric families the serve path must always expose once driven.
EXPECTED_FAMILIES = (
    "repro_http_requests_total",
    "repro_http_request_seconds_count",
    "repro_serve_commands_total",
    "repro_engine_commands_total",
)


def check_metrics(client: SessionClient) -> dict:
    """Scrape /metrics twice and schema-check the exposition.

    Non-empty, expected families present, and every counter-style sample
    (``*_total``, ``*_count``, ``*_bucket``) monotonic across the two
    scrapes — a command runs in between, so at least one must grow.
    Returns the final snapshot (metrics samples + statusz) for the
    artifact.
    """
    first = parse_prometheus_text(client.metrics())
    check(first, "first /metrics scrape is empty")
    client.health()  # traffic between scrapes: some counter must move
    second_text = client.metrics()
    second = parse_prometheus_text(second_text)
    for family in EXPECTED_FAMILIES:
        check(
            any(key.startswith(family) for key in second),
            f"/metrics is missing expected family {family}",
        )
    grew = 0
    for key, before in first.items():
        base = key.split("{", 1)[0]
        if not base.endswith(("_total", "_count", "_bucket")):
            continue
        after = second.get(key)
        check(
            after is not None and after >= before,
            f"counter sample {key} went backwards: {before} -> {after}",
        )
        if after > before:
            grew += 1
    check(grew > 0, "no counter sample grew between scrapes")

    status = client.statusz()
    for section in ("uptime_seconds", "sessions", "snapshots", "commands", "engine"):
        check(section in status, f"/statusz is missing section {section!r}")
    for command in ("propose", "submit"):
        check(
            status["commands"].get(command, {}).get("count", 0) > 0,
            f"/statusz shows no {command} commands after a driven session",
        )
    print(
        f"[serve-smoke] metrics OK: {len(second)} samples, "
        f"{grew} counter(s) grew between scrapes"
    )
    return {"metrics": second_text, "statusz": status}


def main() -> int:
    with tempfile.TemporaryDirectory(prefix="serve_smoke_") as tmp:
        # ---- reference: one uninterrupted server ---------------------- #
        ref_root = Path(tmp) / "reference"
        proc, client = start_server(ref_root)
        try:
            client.create(SESSION, **CFG)
            ref_curve: dict[int, float] = {}
            drive(client, ref_curve)
            ref_lfs = final_lfs(client)
            ref_score = client.score(SESSION)["test_score"]
            artifact = check_metrics(client)
        finally:
            proc.send_signal(signal.SIGTERM)
            proc.wait()
        print(f"[serve-smoke] reference run: {len(ref_lfs)} LFs, curve {ref_curve}")
        artifact_out = os.environ.get("SERVE_SMOKE_METRICS_OUT")
        if artifact_out:
            Path(artifact_out).write_text(json.dumps(artifact, indent=2) + "\n")
            print(f"[serve-smoke] wrote metrics artifact to {artifact_out}")

        # ---- victim: SIGKILLed mid-session, then restarted ------------ #
        root = Path(tmp) / "killed"
        proc, client = start_server(root)
        client.create(SESSION, **CFG)
        curve: dict[int, float] = {}
        drive(client, curve, kill_proc=proc)
        check(proc.poll() is not None, "server survived SIGKILL?")
        print(f"[serve-smoke] SIGKILLed server after iteration {KILL_AFTER}")

        snapshots = sorted((root / SESSION).glob("step-*.ckpt.npz"))
        check(
            len(snapshots) <= KEEP_LAST,
            f"rotation kept {len(snapshots)} snapshots, cap is {KEEP_LAST}",
        )
        check(
            snapshots and snapshots[-1].name == "step-00000006.ckpt.npz",
            f"latest rotated snapshot unexpected: {[p.name for p in snapshots]}",
        )

        proc, client = start_server(root)
        try:
            restored = client.info(SESSION)["iteration"]
            check(
                restored == KILL_AFTER - 1,
                f"restored iteration {restored}, expected {KILL_AFTER - 1} "
                "(the un-snapshotted commit must be lost)",
            )
            print(f"[serve-smoke] restarted server resumed at iteration {restored}")
            drive(client, curve)  # replays 7, then continues to the end
            kill_lfs = final_lfs(client)
            kill_score = client.score(SESSION)["test_score"]
        finally:
            proc.send_signal(signal.SIGTERM)
            proc.wait()

        # ---- bit-identical to the uninterrupted run ------------------- #
        check(curve == ref_curve, f"curves differ: {curve} != {ref_curve}")
        check(kill_lfs == ref_lfs, f"LF sequences differ: {kill_lfs} != {ref_lfs}")
        check(kill_score == ref_score, "final scores differ")
    print(
        "[serve-smoke] OK: kill/restart resumed from the rotated snapshot and "
        "the completed curve is bit-identical to the uninterrupted run"
    )
    return 0


if __name__ == "__main__":
    raise SystemExit(main())
