"""Generate the seeded-transcript golden fixtures for the parity tests.

Runs small binary and multiclass IDP sessions through the public APIs and
records their full transcripts (selected dev indices, developed LFs, the
active refinement percentile, final posteriors and test score) to
``tests/golden/*.json``.  The fixtures were captured from the pre-refactor
mirrored implementations; ``tests/integration/test_golden_parity.py``
replays the same configurations against the unified cardinality-generic
code and asserts the transcripts match.

Re-run after any *intentional* behavioral change::

    PYTHONPATH=src python tools/gen_golden_parity.py
"""

from __future__ import annotations

import json
import sys
from pathlib import Path

REPO_ROOT = Path(__file__).resolve().parent.parent
SRC = REPO_ROOT / "src"
if str(SRC) not in sys.path:
    sys.path.insert(0, str(SRC))

GOLDEN_DIR = REPO_ROOT / "tests" / "golden"


class RecordingSelector:
    """Wraps a selector, recording every index it returns (None -> -1)."""

    def __init__(self, inner):
        self.inner = inner
        self.choices = []
        self.name = getattr(inner, "name", "recording")

    def select(self, state):
        idx = self.inner.select(state)
        self.choices.append(-1 if idx is None else int(idx))
        return idx


def transcript(session, selector_rec, round_to=8):
    return {
        "selected": selector_rec.choices,
        "lfs": [[int(lf.primitive_id), int(lf.label)] for lf in session.lfs],
        "active_percentile": session.active_percentile_,
        "test_score": round(float(session.test_score()), 10),
        "soft_labels": [round(float(v), round_to) for v in session.soft_labels.ravel()],
    }


def binary_cases():
    from repro.core.contextualizer import LFContextualizer, PercentileTuner
    from repro.core.session import DataProgrammingSession
    from repro.core.seu import SEUSelector
    from repro.data import load_dataset
    from repro.interactive.basic_selectors import make_basic_selector
    from repro.interactive.simulated_user import NoisyUser, SimulatedUser

    ds = load_dataset("amazon", scale="tiny", seed=0)
    cases = {}

    rec = RecordingSelector(SEUSelector())
    session = DataProgrammingSession(
        ds,
        rec,
        SimulatedUser(ds, seed=1),
        contextualizer=LFContextualizer(),
        percentile_tuner=PercentileTuner(metric=ds.metric),
        seed=0,
    )
    session.run(12)
    cases["nemo"] = transcript(session, rec)

    for name in ("random", "abstain", "disagree"):
        rec = RecordingSelector(make_basic_selector(name))
        session = DataProgrammingSession(ds, rec, SimulatedUser(ds, seed=2), seed=3)
        session.run(8)
        cases[name] = transcript(session, rec)

    rec = RecordingSelector(SEUSelector(user_model="thresholded", utility="no-correctness"))
    session = DataProgrammingSession(
        ds,
        rec,
        NoisyUser(ds, mislabel_rate=0.3, judgment_noise=0.2, seed=4),
        seed=5,
    )
    session.run(10)
    cases["noisy"] = transcript(session, rec)
    return cases


def multiclass_cases():
    from repro.multiclass import make_topics_dataset
    from repro.multiclass.contextualizer import MCContextualizer, MCPercentileTuner
    from repro.multiclass.selection import (
        MCAbstainSelector,
        MCDisagreeSelector,
        MCRandomSelector,
        MCUncertaintySelector,
    )
    from repro.multiclass.session import MultiClassSession
    from repro.multiclass.seu import MCSEUSelector
    from repro.multiclass.simulated_user import MCNoisyUser, MCSimulatedUser

    ds = make_topics_dataset(n_docs=500, seed=0, vocab_scale=6)
    cases = {}

    rec = RecordingSelector(MCSEUSelector())
    session = MultiClassSession(
        ds,
        rec,
        MCSimulatedUser(ds, seed=1),
        contextualizer=MCContextualizer(n_classes=ds.n_classes),
        percentile_tuner=MCPercentileTuner(),
        seed=0,
    )
    session.run(12)
    cases["nemo"] = transcript(session, rec)

    basics = {
        "random": MCRandomSelector,
        "abstain": MCAbstainSelector,
        "disagree": MCDisagreeSelector,
        "uncertainty": MCUncertaintySelector,
    }
    for name, cls in basics.items():
        rec = RecordingSelector(cls())
        session = MultiClassSession(ds, rec, MCSimulatedUser(ds, seed=2), seed=3)
        session.run(8)
        cases[name] = transcript(session, rec)

    rec = RecordingSelector(MCSEUSelector(user_model="thresholded", utility="no-correctness"))
    session = MultiClassSession(
        ds,
        rec,
        MCNoisyUser(ds, mislabel_rate=0.3, judgment_noise=0.2, seed=4),
        seed=5,
    )
    session.run(10)
    cases["noisy"] = transcript(session, rec)
    return cases


def main() -> int:
    GOLDEN_DIR.mkdir(parents=True, exist_ok=True)
    for name, cases in (
        ("binary_session.json", binary_cases()),
        ("multiclass_session.json", multiclass_cases()),
    ):
        path = GOLDEN_DIR / name
        path.write_text(json.dumps(cases, indent=1) + "\n")
        print(f"wrote {path} ({len(cases)} cases)")
    return 0


if __name__ == "__main__":
    raise SystemExit(main())
