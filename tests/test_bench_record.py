"""Guards on the committed session-throughput benchmark record.

`BENCH_session_throughput.json` is the repo's performance ledger: the
50k-scale acceptance row and the per-phase attribution must not silently
disappear when the benchmark is regenerated.  The same check runs in the
CI bench smoke (`bench_perf_session.py --quick`).
"""

import json
import sys
from pathlib import Path

REPO_ROOT = Path(__file__).resolve().parent.parent


def load_checker():
    sys.path.insert(0, str(REPO_ROOT))
    from benchmarks.bench_perf_session import (
        LARGE_N_SPEEDUP,
        LARGE_N_TRAIN,
        PHASE_KEYS,
        check_record,
    )

    return check_record, PHASE_KEYS, LARGE_N_TRAIN, LARGE_N_SPEEDUP


def load_record():
    return json.loads((REPO_ROOT / "BENCH_session_throughput.json").read_text())


class TestCommittedBenchRecord:
    def test_record_passes_shape_check(self):
        check_record, *_ = load_checker()
        assert check_record(load_record()) == []

    def test_phase_timing_keys_present_everywhere(self):
        _, phase_keys, *_ = load_checker()
        for entry in load_record()["results"]:
            for mode in ("scratch", "incremental"):
                phases = entry[mode]["phase_seconds"]
                for key in phase_keys:
                    assert key in phases, (entry["task"], entry["n_train"], mode, key)

    def test_large_n_row_present_and_fast_enough(self):
        _, _, large_n, min_speedup = load_checker()
        rows = [
            r
            for r in load_record()["results"]
            if r["task"] == "binary" and r["n_train"] == large_n
        ]
        assert rows, f"binary n_train={large_n} row missing from committed record"
        assert rows[0]["speedup"] >= min_speedup

    def test_target_row_not_regressed(self):
        record = load_record()
        target = record["target"]
        rows = [
            r
            for r in record["results"]
            if r["task"] == "binary" and r["n_train"] == target["n_train"]
        ]
        assert rows and rows[0]["speedup"] >= target["min_speedup"]
