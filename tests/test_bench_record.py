"""Guards on the committed session-throughput benchmark record.

`BENCH_session_throughput.json` is the repo's performance ledger: the
50k-scale acceptance row and the per-phase attribution must not silently
disappear when the benchmark is regenerated.  The same check runs in the
CI bench smoke (`bench_perf_session.py --quick`).
"""

import json
import sys
from pathlib import Path

REPO_ROOT = Path(__file__).resolve().parent.parent


def load_checker():
    sys.path.insert(0, str(REPO_ROOT))
    from benchmarks.bench_perf_session import (
        LARGE_N_SPEEDUP,
        LARGE_N_TRAIN,
        PHASE_KEYS,
        check_record,
    )

    return check_record, PHASE_KEYS, LARGE_N_TRAIN, LARGE_N_SPEEDUP


def load_record():
    return json.loads((REPO_ROOT / "BENCH_session_throughput.json").read_text())


class TestCommittedBenchRecord:
    def test_record_passes_shape_check(self):
        check_record, *_ = load_checker()
        assert check_record(load_record()) == []

    def test_phase_timing_keys_present_everywhere(self):
        _, phase_keys, *_ = load_checker()
        for entry in load_record()["results"]:
            for mode in ("scratch", "incremental"):
                phases = entry[mode]["phase_seconds"]
                for key in phase_keys:
                    assert key in phases, (entry["task"], entry["n_train"], mode, key)

    def test_large_n_row_present_and_fast_enough(self):
        _, _, large_n, min_speedup = load_checker()
        rows = [
            r
            for r in load_record()["results"]
            if r["task"] == "binary" and r["n_train"] == large_n
        ]
        assert rows, f"binary n_train={large_n} row missing from committed record"
        assert rows[0]["speedup"] >= min_speedup

    def test_target_row_not_regressed(self):
        record = load_record()
        target = record["target"]
        rows = [
            r
            for r in record["results"]
            if r["task"] == "binary" and r["n_train"] == target["n_train"]
        ]
        assert rows and rows[0]["speedup"] >= target["min_speedup"]

    def test_xl_ceiling_row_present(self):
        sys.path.insert(0, str(REPO_ROOT))
        from benchmarks.bench_perf_session import XL_N_TRAIN

        rows = [
            r
            for r in load_record()["results"]
            if r["task"] == "binary" and r["n_train"] == XL_N_TRAIN
        ]
        assert rows, f"binary n_train={XL_N_TRAIN} ceiling row missing"

    def test_every_row_reports_peak_rss(self):
        for entry in load_record()["results"]:
            assert isinstance(entry.get("peak_rss_mb"), (int, float)), (
                entry["task"],
                entry["n_train"],
            )
            assert entry["peak_rss_mb"] > 0

    def test_label_model_attribution_present_everywhere(self):
        sys.path.insert(0, str(REPO_ROOT))
        from benchmarks.bench_perf_session import LABEL_MODEL_KEYS

        for entry in load_record()["results"]:
            for mode in ("scratch", "incremental"):
                lm = entry[mode]["label_model"]
                for key in LABEL_MODEL_KEYS:
                    assert key in lm, (entry["task"], entry["n_train"], mode, key)
                assert set(lm["refits"]) <= {"warm", "cold"}
                assert sum(lm["em_iterations"].values()) > 0
                # scratch = every refit cold, by construction
                if mode == "scratch":
                    assert lm["refits"].get("warm", 0) == 0

    def test_xl_row_meets_sparse_cold_floor(self):
        sys.path.insert(0, str(REPO_ROOT))
        from benchmarks.bench_perf_session import XL_N_SPEEDUP, XL_N_TRAIN

        rows = [
            r
            for r in load_record()["results"]
            if r["task"] == "binary" and r["n_train"] == XL_N_TRAIN
        ]
        assert rows and rows[0]["speedup"] >= XL_N_SPEEDUP

    def test_incremental_scores_at_least_scratch_everywhere(self):
        for entry in load_record()["results"]:
            assert entry["score_gap"] >= 0, (entry["task"], entry["n_train"])

    def test_end_model_warm_refits_beat_scratch_at_50k(self):
        """The PR-7 lever: warm minibatch refits must keep the incremental
        end-model phase well under the scratch (full-refit) end-model
        phase at the 50k row.  (Formerly a <30%-of-incremental-wall-clock
        share guard; the sparse label-model cold path shrank the
        denominator, so the lever is now pinned against scratch's own
        end-model seconds — a ratio the label-model phase can't move.)"""
        rows = [
            r
            for r in load_record()["results"]
            if r["task"] == "binary" and r["n_train"] == 50_000
        ]
        assert rows
        inc_end = rows[0]["incremental"]["phase_seconds"]["end_model"]
        scratch_end = rows[0]["scratch"]["phase_seconds"]["end_model"]
        ratio = inc_end / scratch_end
        assert ratio < 0.60, f"incremental end_model {ratio:.1%} of scratch's"


class TestQuickModeCannotClobber:
    """`--quick` must never write over the committed full-sweep record."""

    def _args(self, output):
        import argparse

        return argparse.Namespace(
            sizes=[1_000, 10_000],
            mc_sizes=[1_000],
            iterations=30,
            output=output,
        )

    def test_default_output_redirected(self):
        sys.path.insert(0, str(REPO_ROOT))
        from benchmarks.bench_perf_session import apply_quick_mode

        committed = REPO_ROOT / "BENCH_session_throughput.json"
        args = self._args(str(committed))
        apply_quick_mode(args)
        assert Path(args.output).resolve() != committed.resolve()
        assert args.output.endswith(".quick.json")
        assert args.sizes == [1_000] and args.mc_sizes == [1_000]
        assert args.iterations == 10

    def test_explicit_committed_path_also_redirected(self):
        sys.path.insert(0, str(REPO_ROOT))
        from benchmarks.bench_perf_session import apply_quick_mode

        # A sneaky relative spelling of the committed path still redirects.
        committed = REPO_ROOT / "benchmarks" / ".." / "BENCH_session_throughput.json"
        args = self._args(str(committed))
        apply_quick_mode(args)
        assert args.output.endswith(".quick.json")

    def test_other_outputs_left_alone(self):
        sys.path.insert(0, str(REPO_ROOT))
        from benchmarks.bench_perf_session import apply_quick_mode

        args = self._args("/tmp/somewhere_else.json")
        apply_quick_mode(args)
        assert args.output == "/tmp/somewhere_else.json"
