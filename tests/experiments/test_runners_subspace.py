"""Tests for the method registry and the Figure-2 subspace analysis."""

import numpy as np
import pytest

from repro.core.session import DataProgrammingSession, InteractiveMethod
from repro.data import load_dataset
from repro.experiments.runners import TABLE2_METHODS, TABLE5_METHODS, make_method
from repro.experiments.subspace import lf_subspace_profile


@pytest.fixture(scope="module")
def dataset():
    return load_dataset("amazon", scale="tiny", seed=0)


class TestRegistry:
    @pytest.mark.parametrize("name", TABLE2_METHODS)
    def test_table2_methods_construct_and_step(self, name, dataset):
        method = make_method(name)(dataset, 0)
        assert isinstance(method, InteractiveMethod)
        method.step()
        assert 0.0 <= method.test_score() <= 1.0

    @pytest.mark.parametrize("name", TABLE5_METHODS)
    def test_table5_methods_are_sessions(self, name, dataset):
        method = make_method(name)(dataset, 0)
        assert isinstance(method, DataProgrammingSession)

    @pytest.mark.parametrize(
        "name",
        ["nemo-no-selector", "nemo-no-contextualizer", "seu-uniform",
         "seu-no-informativeness", "seu-no-correctness", "contextualized",
         "standard", "ctx-cosine", "ctx-euclidean"],
    )
    def test_ablation_methods_construct(self, name, dataset):
        method = make_method(name)(dataset, 0)
        method.step()

    def test_unknown_method(self):
        with pytest.raises(ValueError):
            make_method("gpt4-labeling")

    def test_user_threshold_forwarded(self, dataset):
        method = make_method("snorkel", user_threshold=0.8)(dataset, 0)
        assert method.user.accuracy_threshold == 0.8

    def test_nemo_has_contextualizer_and_seu(self, dataset):
        method = make_method("nemo")(dataset, 0)
        assert method.contextualizer is not None
        from repro.core.seu import SEUSelector

        assert isinstance(method.selector, SEUSelector)

    def test_snorkel_is_vanilla(self, dataset):
        method = make_method("snorkel")(dataset, 0)
        assert method.contextualizer is None


class TestSubspaceProfile:
    def test_figure2_shape_holds(self, dataset):
        profile = lf_subspace_profile(dataset, n_lfs=40, n_bins=4, seed=0)
        assert profile.n_lfs == 40
        # Coverage decays with distance (paper Fig. 2 left).
        assert profile.coverage[0] > profile.coverage[-1]
        # Accuracy near the development data beats the far bins (Fig. 2 right).
        far = profile.accuracy[2:]
        far = far[~np.isnan(far)]
        if far.size:
            assert profile.accuracy[0] > far.mean() - 0.05

    def test_rows_format(self, dataset):
        profile = lf_subspace_profile(dataset, n_lfs=10, n_bins=4, seed=1)
        rows = profile.rows()
        assert len(rows) == 4
        assert rows[0][0] == "0-25%"

    def test_invalid_args(self, dataset):
        with pytest.raises(ValueError):
            lf_subspace_profile(dataset, n_lfs=0)
        with pytest.raises(ValueError):
            lf_subspace_profile(dataset, n_bins=1)
