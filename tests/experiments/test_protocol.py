"""Tests for the evaluation protocol and reporting."""

import numpy as np
import pytest

from repro.core.session import InteractiveMethod
from repro.data import load_dataset
from repro.experiments.protocol import (
    LearningCurve,
    RunResult,
    evaluate_method,
    run_learning_curve,
)
from repro.experiments.reporting import format_series, format_table, relative_lift


class CountingMethod(InteractiveMethod):
    """Deterministic fake method: score = iterations stepped / 100."""

    def __init__(self, dataset, seed=None):
        super().__init__(dataset, seed)
        self.steps = 0

    def step(self):
        self.steps += 1

    def predict_test(self):  # pragma: no cover - unused via test_score override
        return np.ones(self.dataset.test.n, dtype=int)

    def test_score(self):
        return self.steps / 100.0


@pytest.fixture(scope="module")
def dataset():
    return load_dataset("amazon", scale="tiny", seed=0)


class TestRunLearningCurve:
    def test_eval_points(self, dataset):
        curve = run_learning_curve(CountingMethod(dataset), n_iterations=20, eval_every=5)
        assert curve.iterations == [5, 10, 15, 20]
        np.testing.assert_allclose(curve.scores, [0.05, 0.10, 0.15, 0.20])

    def test_final_iteration_always_evaluated(self, dataset):
        # Regression: with 50 iterations and eval_every=7 the last cadence
        # point is 49 — the model trained by iteration 50 must still be
        # scored, not silently dropped.
        curve = run_learning_curve(CountingMethod(dataset), n_iterations=50, eval_every=7)
        assert curve.iterations == [7, 14, 21, 28, 35, 42, 49, 50]
        assert curve.final == pytest.approx(0.50)

    def test_no_duplicate_final_point_when_cadence_divides(self, dataset):
        curve = run_learning_curve(CountingMethod(dataset), n_iterations=15, eval_every=5)
        assert curve.iterations == [5, 10, 15]

    def test_summary_is_mean(self, dataset):
        curve = run_learning_curve(CountingMethod(dataset), n_iterations=20, eval_every=5)
        assert curve.summary == pytest.approx(0.125)
        assert curve.final == pytest.approx(0.20)

    def test_short_run_evaluates_once(self, dataset):
        curve = run_learning_curve(CountingMethod(dataset), n_iterations=3, eval_every=5)
        assert curve.iterations == [3]

    def test_invalid_args(self, dataset):
        with pytest.raises(ValueError):
            run_learning_curve(CountingMethod(dataset), n_iterations=0)
        with pytest.raises(ValueError):
            run_learning_curve(CountingMethod(dataset), eval_every=0)


class TestEvaluateMethod:
    def test_aggregates_seeds(self, dataset):
        result = evaluate_method(
            lambda ds, seed: CountingMethod(ds, seed),
            "counting",
            dataset,
            n_iterations=10,
            eval_every=5,
            n_seeds=3,
        )
        assert len(result.curves) == 3
        assert result.summary_mean == pytest.approx(0.075)
        assert result.summary_std == pytest.approx(0.0)

    def test_mean_curve(self, dataset):
        result = RunResult(
            "m", "d",
            curves=[
                LearningCurve([5, 10], [0.2, 0.4]),
                LearningCurve([5, 10], [0.4, 0.6]),
            ],
        )
        mean = result.mean_curve()
        np.testing.assert_allclose(mean.scores, [0.3, 0.5])

    def test_invalid_seeds(self, dataset):
        with pytest.raises(ValueError):
            evaluate_method(lambda ds, s: CountingMethod(ds), "m", dataset, n_seeds=0)

    def test_mixed_grids_raise_clear_error(self):
        # Regression: curves from different eval cadences must not be
        # averaged point-wise (mis-aligned supervision budgets) nor die on
        # ragged numpy input.
        result = RunResult(
            "m", "d",
            curves=[
                LearningCurve([5, 10], [0.2, 0.4]),
                LearningCurve([7, 10], [0.3, 0.5]),
            ],
        )
        with pytest.raises(ValueError, match="evaluation grids"):
            result.mean_curve()
        with pytest.raises(ValueError, match="evaluation grids"):
            result.summary_mean
        ragged = RunResult(
            "m", "d",
            curves=[
                LearningCurve([5, 10], [0.2, 0.4]),
                LearningCurve([5, 10, 15], [0.2, 0.4, 0.6]),
            ],
        )
        with pytest.raises(ValueError, match="evaluation grids"):
            ragged.mean_curve()

    def test_empty_result_raises_clear_error(self):
        with pytest.raises(ValueError, match="no curves"):
            RunResult("m", "d").mean_curve()


class TestSpreadStatistics:
    """summary_std / final_std report the *sample* std (ddof=1).

    The seeds are a sample of the method's run distribution; the
    population formula systematically understates the spread at the 3–5
    seeds the protocol runs.  A single curve reports 0.0, not NaN.
    """

    def _result(self, finals):
        return RunResult(
            "m", "d",
            curves=[LearningCurve([5, 10], [f - 0.1, f]) for f in finals],
        )

    def test_summary_std_is_sample_std(self):
        result = self._result([0.2, 0.4, 0.6])
        summaries = [c.summary for c in result.curves]
        assert result.summary_std == pytest.approx(np.std(summaries, ddof=1))
        assert result.summary_std > np.std(summaries)  # ddof=0 understates

    def test_final_std_is_sample_std(self):
        finals = [0.2, 0.4, 0.9]
        result = self._result(finals)
        assert result.final_std == pytest.approx(np.std(finals, ddof=1))
        assert result.final_mean == pytest.approx(np.mean(finals))

    def test_single_curve_reports_zero_spread(self):
        result = self._result([0.5])
        assert result.summary_std == 0.0
        assert result.final_std == 0.0


class TestResumableCurve:
    def test_resume_matches_fresh_run(self, dataset):
        fresh = run_learning_curve(CountingMethod(dataset), n_iterations=10, eval_every=3)

        method = CountingMethod(dataset)
        partial = run_learning_curve(method, n_iterations=4, eval_every=3)
        # The protocol's tail evaluation at 4 is an artifact of stopping
        # there; a mid-run checkpoint records only the cadence points.
        if partial.iterations[-1] % 3 != 0:
            partial.iterations.pop()
            partial.scores.pop()
        resumed = run_learning_curve(
            method, n_iterations=10, eval_every=3, start_iteration=4, curve=partial
        )
        assert resumed.iterations == fresh.iterations
        assert resumed.scores == fresh.scores

    def test_resume_at_end_only_appends_missing_final_eval(self, dataset):
        method = CountingMethod(dataset)
        for _ in range(10):
            method.step()
        curve = LearningCurve([3, 6, 9], [0.03, 0.06, 0.09])
        resumed = run_learning_curve(
            method, n_iterations=10, eval_every=3, start_iteration=10, curve=curve
        )
        assert resumed.iterations == [3, 6, 9, 10]
        assert resumed.scores[-1] == pytest.approx(0.10)

    def test_after_iteration_hook_sees_every_iteration(self, dataset):
        seen = []
        run_learning_curve(
            CountingMethod(dataset),
            n_iterations=6,
            eval_every=2,
            after_iteration=lambda it, curve: seen.append((it, len(curve.iterations))),
        )
        assert [it for it, _ in seen] == [1, 2, 3, 4, 5, 6]
        # The hook runs after the cadence evaluation of its iteration.
        assert seen[1] == (2, 1) and seen[5] == (6, 3)

    def test_invalid_resume_arguments(self, dataset):
        with pytest.raises(ValueError, match="start_iteration"):
            run_learning_curve(CountingMethod(dataset), n_iterations=5, start_iteration=6)
        with pytest.raises(ValueError, match="start_iteration"):
            run_learning_curve(CountingMethod(dataset), n_iterations=5, start_iteration=-1)
        with pytest.raises(ValueError, match="curve recorded so far"):
            run_learning_curve(CountingMethod(dataset), n_iterations=5, start_iteration=2)


class TestReporting:
    def test_format_table_marks_winner(self):
        text = format_table(
            "T", ["a", "b"], {"ds1": [0.5, 0.7], "ds2": [0.9, 0.1]}
        )
        assert "0.7000*" in text and "0.9000*" in text

    def test_format_table_handles_none(self):
        text = format_table("T", ["a"], {"ds": [None]})
        assert "n/a" in text

    def test_format_table_row_length_check(self):
        with pytest.raises(ValueError):
            format_table("T", ["a", "b"], {"ds": [0.5]})

    def test_format_series(self):
        text = format_series("F", [1, 2, 3], [0.1, 0.2, 0.3], "iter", "acc")
        assert "iter" in text and "0.3000" in text

    def test_series_length_check(self):
        with pytest.raises(ValueError):
            format_series("F", [1], [0.1, 0.2])

    def test_relative_lift(self):
        assert relative_lift(0.6, 0.5) == pytest.approx(0.2)
        with pytest.raises(ValueError):
            relative_lift(0.5, 0.0)
