"""Tests for the Sec.-7 batched IDP generalization."""

import numpy as np
import pytest

from repro.core.batch_session import (
    BatchDataProgrammingSession,
    BatchRandomSelector,
    BatchSEUSelector,
)
from repro.core.lf import PrimitiveLF
from repro.interactive.basic_selectors import RandomSelector
from repro.interactive.simulated_user import SimulatedUser


class TestBatchSelectors:
    def test_batch_sizes(self, empty_state):
        batch = BatchRandomSelector(batch_size=4).select_batch(empty_state)
        assert len(batch) == 4
        assert len(set(batch)) == 4

    def test_batch_respects_exclusions(self, empty_state):
        empty_state.selected = set(range(empty_state.n_train)) - {3, 7}
        batch = BatchRandomSelector(batch_size=5).select_batch(empty_state)
        assert set(batch) <= {3, 7}

    def test_seu_batch_returns_top_scored(self, empty_state):
        empty_state.lfs = [PrimitiveLF(0, "a", 1), PrimitiveLF(1, "b", -1),
                           PrimitiveLF(2, "c", 1)]
        rng = np.random.default_rng(0)
        empty_state.proxy_proba = rng.uniform(0.1, 0.9, empty_state.n_train)
        empty_state.entropies = rng.uniform(0, 0.69, empty_state.n_train)
        selector = BatchSEUSelector(batch_size=3, warmup=0)
        batch = selector.select_batch(empty_state)
        scores = selector.expected_utilities(empty_state)
        mask = empty_state.candidate_mask()
        best = np.where(mask, scores, -np.inf)
        expected_top = set(np.argsort(best)[::-1][:3].tolist())
        assert set(batch) == expected_top

    def test_invalid_batch_size(self):
        with pytest.raises(ValueError):
            BatchSEUSelector(batch_size=0)
        with pytest.raises(ValueError):
            BatchRandomSelector(batch_size=0)

    def test_empty_pool(self, empty_state):
        empty_state.selected = set(range(empty_state.n_train))
        assert BatchRandomSelector().select_batch(empty_state) == []


class TestBatchSession:
    def test_collects_multiple_lfs_per_iteration(self, tiny_dataset):
        user = SimulatedUser(tiny_dataset, seed=0)
        session = BatchDataProgrammingSession(
            tiny_dataset, BatchRandomSelector(batch_size=3), user, seed=0
        )
        session.run(4)
        assert session.iteration == 4
        assert len(session.lfs) > 4  # more than one LF per iteration

    def test_seu_batch_session_runs(self, tiny_dataset):
        user = SimulatedUser(tiny_dataset, seed=1)
        session = BatchDataProgrammingSession(
            tiny_dataset, BatchSEUSelector(batch_size=2), user, seed=1
        )
        session.run(6)
        assert 0.0 <= session.test_score() <= 1.0
        assert session.L_train.shape[1] == len(session.lfs)

    def test_no_duplicate_lfs_within_batch(self, tiny_dataset):
        user = SimulatedUser(tiny_dataset, seed=2)
        session = BatchDataProgrammingSession(
            tiny_dataset, BatchRandomSelector(batch_size=5), user, seed=2
        )
        session.run(6)
        keys = [(lf.primitive_id, lf.label) for lf in session.lfs]
        assert len(keys) == len(set(keys))

    def test_requires_batch_selector(self, tiny_dataset):
        user = SimulatedUser(tiny_dataset, seed=0)
        with pytest.raises(TypeError, match="select_batch"):
            BatchDataProgrammingSession(tiny_dataset, RandomSelector(), user)

    def test_lineage_tracks_batch_iteration(self, tiny_dataset):
        user = SimulatedUser(tiny_dataset, seed=3)
        session = BatchDataProgrammingSession(
            tiny_dataset, BatchRandomSelector(batch_size=3), user, seed=3
        )
        session.run(2)
        iterations = {r.iteration for r in session.lineage.records}
        assert iterations <= {0, 1}
