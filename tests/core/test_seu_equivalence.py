"""Equivalence of the vectorized SEU scorer and the scalar Eq.-1 reference.

These tests pin :meth:`SEUSelector.expected_utilities` (the sparse
mat-vec path, including its refit-scoped caching) against
:meth:`SEUSelector.expected_utility_of` (the direct transcription of
Eq. 1 that enumerates candidate LFs) on randomized small datasets.  They
are the contract the caching/incremental rewrite must keep: any change to
the vectorized path that drifts from the reference is a bug, not a
speedup.
"""

from types import SimpleNamespace

import numpy as np
import pytest
import scipy.sparse as sp

from repro.core.lf import LFFamily
from repro.core.selection import SessionState
from repro.core.seu import SEUSelector
from repro.labelmodel.base import posterior_entropy


def random_state(seed: int, n: int = 40, n_primitives: int = 15, density: float = 0.25):
    """A synthetic session state over a random incidence matrix."""
    rng = np.random.default_rng(seed)
    dense = (rng.random((n, n_primitives)) < density).astype(np.float64)
    B = sp.csr_matrix(dense)
    family = LFFamily([f"p{j}" for j in range(n_primitives)], B)
    dataset = SimpleNamespace(
        train=SimpleNamespace(B=B, n=n),
        label_prior=float(rng.uniform(0.2, 0.8)),
    )
    proxy_proba = rng.uniform(0.0, 1.0, size=n)
    soft = rng.uniform(0.0, 1.0, size=n)
    return SessionState(
        dataset=dataset,
        family=family,
        iteration=0,
        lfs=[],
        L_train=np.zeros((n, 0), dtype=np.int8),
        soft_labels=soft,
        entropies=posterior_entropy(soft),
        proxy_labels=np.where(proxy_proba >= 0.5, 1, -1),
        proxy_proba=proxy_proba,
        selected=set(),
        rng=np.random.default_rng(seed + 1),
    )


@pytest.mark.parametrize("seed", range(5))
@pytest.mark.parametrize("utility", ["full", "no-informativeness", "no-correctness"])
@pytest.mark.parametrize("user_model", ["accuracy", "uniform", "thresholded"])
class TestVectorizedMatchesScalarReference:
    def test_every_example(self, seed, utility, user_model):
        state = random_state(seed)
        selector = SEUSelector(user_model=user_model, utility=utility, warmup=0)
        expected = selector.expected_utilities(state)
        assert expected.shape == (state.n_train,)
        for idx in range(state.n_train):
            scalar = selector.expected_utility_of(idx, state)
            assert scalar == pytest.approx(expected[idx], rel=1e-9, abs=1e-9), (
                f"example {idx}: vectorized {expected[idx]} != reference {scalar}"
            )


class TestCachingIsTransparent:
    def test_cached_scores_match_uncached(self):
        uncached = random_state(7)
        cached = random_state(7)
        cached.cache = {}
        selector = SEUSelector(warmup=0)
        baseline = selector.expected_utilities(uncached)
        first = selector.expected_utilities(cached)
        second = selector.expected_utilities(cached)
        np.testing.assert_allclose(first, baseline, rtol=0, atol=0)
        assert second is first, "second call should return the memoized vector"
        assert ("seu_expected", "accuracy", "full") in cached.cache

    def test_cache_keyed_by_utility_and_user_model(self):
        state = random_state(11)
        state.cache = {}
        full = SEUSelector(utility="full", warmup=0).expected_utilities(state)
        ablated = SEUSelector(utility="no-correctness", warmup=0).expected_utilities(state)
        assert not np.allclose(full, ablated), "distinct utilities must not share entries"

    def test_reference_path_ignores_cache(self):
        state = random_state(13)
        state.cache = {("seu_expected", "accuracy", "full"): np.full(state.n_train, 123.0)}
        selector = SEUSelector(warmup=0)
        scalar = selector.expected_utility_of(0, state)
        assert scalar != pytest.approx(123.0)


def per_column_loop_reference(selector: SEUSelector, state) -> np.ndarray:
    """The historical per-label-column scoring loop, kept as a bit oracle.

    This is the exact arithmetic ``expected_utilities`` used before the
    single-matmul rewrite: one sparse mat-vec pair and one safe-divide per
    label column.  The fused path must reproduce it bit for bit.
    """
    convention = state.convention
    B = state.B
    proxy = state.resolve_proxy()
    acc = convention.accuracy_table(state.family, proxy)
    weights = selector.user_model.pick_weight_table(acc)
    utils = selector.utility.score_table(
        B, state.entropies, convention.signed_agreement(proxy)
    )
    priors = convention.class_prior_vector(state.dataset)
    expected = np.zeros(state.n_train)
    for j in range(len(convention.labels)):
        numerator = np.asarray(B @ (weights[:, j] * utils[:, j])).ravel()
        denominator = np.asarray(B @ weights[:, j]).ravel()
        contribution = np.divide(
            numerator,
            denominator,
            out=np.zeros_like(numerator),
            where=denominator > 1e-12,
        )
        expected += priors[j] * contribution
    return expected


@pytest.mark.parametrize("seed", range(5))
@pytest.mark.parametrize("utility", ["full", "no-informativeness", "no-correctness"])
@pytest.mark.parametrize("user_model", ["accuracy", "uniform", "thresholded"])
class TestSingleMatmulBitIdentical:
    def test_equals_historical_per_column_loop(self, seed, utility, user_model):
        state = random_state(seed)
        selector = SEUSelector(user_model=user_model, utility=utility, warmup=0)
        np.testing.assert_array_equal(
            selector.expected_utilities(state),
            per_column_loop_reference(selector, state),
        )
