"""Tests for the SEU selector (Eq. 1)."""

import numpy as np
import pytest

from repro.core.lf import PrimitiveLF
from repro.core.seu import SEUSelector


class TestColdStart:
    def test_warmup_selects_randomly_but_validly(self, empty_state):
        selector = SEUSelector(warmup=3)
        idx = selector.select(empty_state)
        assert idx is not None
        assert empty_state.candidate_mask()[idx]

    def test_cold_start_predicate(self, empty_state):
        selector = SEUSelector(warmup=2)
        assert selector._in_cold_start(empty_state)
        empty_state.lfs = [PrimitiveLF(0, "a", 1), PrimitiveLF(1, "b", 1)]
        # enough LFs but single polarity -> still cold
        assert selector._in_cold_start(empty_state)
        empty_state.lfs = [PrimitiveLF(0, "a", 1), PrimitiveLF(1, "b", -1)]
        assert not selector._in_cold_start(empty_state)

    def test_invalid_warmup(self):
        with pytest.raises(ValueError):
            SEUSelector(warmup=-1)


class TestScoring:
    def _warm_state(self, state):
        state.lfs = [PrimitiveLF(0, "a", 1), PrimitiveLF(1, "b", -1)]
        rng = np.random.default_rng(0)
        n = state.n_train
        state.proxy_proba = rng.uniform(0.1, 0.9, n)
        state.proxy_labels = np.where(state.proxy_proba >= 0.5, 1, -1)
        state.entropies = rng.uniform(0.0, 0.69, n)
        return state

    def test_vectorized_matches_reference(self, empty_state):
        state = self._warm_state(empty_state)
        selector = SEUSelector(warmup=0)
        expected = selector.expected_utilities(state)
        for idx in [0, 3, 7, 19]:
            scalar = selector.expected_utility_of(idx, state)
            assert scalar == pytest.approx(expected[idx], rel=1e-9, abs=1e-9)

    def test_selects_argmax_of_expected_utility(self, empty_state):
        state = self._warm_state(empty_state)
        selector = SEUSelector(warmup=0)
        scores = selector.expected_utilities(state)
        mask = state.candidate_mask()
        chosen = selector.select(state)
        best = np.where(mask, scores, -np.inf).max()
        assert scores[chosen] == pytest.approx(best)

    def test_excludes_already_selected(self, empty_state):
        state = self._warm_state(empty_state)
        selector = SEUSelector(warmup=0)
        first = selector.select(state)
        state.selected.add(first)
        second = selector.select(state)
        assert second != first

    def test_returns_none_when_pool_exhausted(self, empty_state):
        state = self._warm_state(empty_state)
        state.selected = set(range(state.n_train))
        assert SEUSelector(warmup=0).select(state) is None

    def test_uniform_user_model_changes_ranking(self, empty_state):
        state = self._warm_state(empty_state)
        acc_scores = SEUSelector(warmup=0, user_model="accuracy").expected_utilities(state)
        uni_scores = SEUSelector(warmup=0, user_model="uniform").expected_utilities(state)
        assert not np.allclose(acc_scores, uni_scores)

    def test_utility_ablation_changes_ranking(self, empty_state):
        state = self._warm_state(empty_state)
        full = SEUSelector(warmup=0, utility="full").expected_utilities(state)
        noinf = SEUSelector(warmup=0, utility="no-informativeness").expected_utilities(state)
        assert not np.allclose(full, noinf)

    def test_examples_without_primitives_never_selected(self, empty_state):
        state = self._warm_state(empty_state)
        has_prims = np.asarray(state.B.sum(axis=1)).ravel() > 0
        if (~has_prims).any():
            chosen = SEUSelector(warmup=0).select(state)
            assert has_prims[chosen]
