"""The two-phase command protocol: propose / submit / decline / cancel.

Covers the tentpole contract of the protocol refactor: the protocol is
bit-identical to the historical pull-model ``step()`` (which is itself now
a :class:`~repro.core.protocol.SimulatedDriver` over the commands — the
golden parity tests pin the absolute transcripts), plus the protocol-state
rules and the all-or-nothing develop commit.
"""

import numpy as np
import pytest

from repro.core.lf import PrimitiveLF
from repro.core.protocol import ProtocolError, SimulatedDriver, StepOutcome
from repro.core.session import DataProgrammingSession
from repro.core.seu import SEUSelector
from repro.interactive.basic_selectors import make_basic_selector
from repro.interactive.simulated_user import SimulatedUser


def make_session(dataset, selector="random", seed=7, user_seed=3, **kwargs):
    sel = SEUSelector() if selector == "seu" else make_basic_selector(selector)
    return DataProgrammingSession(
        dataset, sel, SimulatedUser(dataset, seed=user_seed), seed=seed, **kwargs
    )


def transcript(session):
    return (
        [(int(r.lf.primitive_id), int(r.lf.label), int(r.dev_index), int(r.iteration))
         for r in session.lineage.records],
        session.iteration,
        sorted(session.selected),
    )


class TestProtocolParity:
    @pytest.mark.parametrize("selector", ["random", "abstain", "seu"])
    def test_manual_protocol_matches_step(self, tiny_dataset, selector):
        """Driving propose/submit by hand equals the historical step loop."""
        via_step = make_session(tiny_dataset, selector)
        via_protocol = make_session(tiny_dataset, selector)
        for _ in range(8):
            via_step.step()
            pending = via_protocol.propose()
            if pending.dev_index is None:
                via_protocol.decline()
                continue
            lf = via_protocol.user.create_lf(pending.dev_index, pending.state)
            if lf is None:
                via_protocol.decline()
            else:
                via_protocol.submit(lf)
        assert transcript(via_step) == transcript(via_protocol)
        np.testing.assert_array_equal(via_step.soft_labels, via_protocol.soft_labels)
        assert via_step.test_score() == via_protocol.test_score()

    def test_driver_with_external_user(self, tiny_dataset):
        """A driver can carry a user other than the session's own."""
        session = make_session(tiny_dataset, "random")
        other = SimulatedUser(tiny_dataset, seed=3)  # same seed as session's user
        reference = make_session(tiny_dataset, "random")
        driver = SimulatedDriver(session, other)
        for _ in range(6):
            outcome = driver.step()
            assert isinstance(outcome, StepOutcome)
            reference.step()
        assert transcript(session) == transcript(reference)

    def test_run_resolves_proxy(self, tiny_dataset):
        session = make_session(tiny_dataset, "seu").run(6)
        assert session._proxy_stale is False


class TestProtocolState:
    def test_propose_is_idempotent(self, tiny_dataset):
        session = make_session(tiny_dataset, "random")
        first = session.propose()
        rng_state = session.rng.bit_generator.state
        second = session.propose()
        assert second is first
        # the selector must not have re-run (no second RNG draw)
        assert session.rng.bit_generator.state == rng_state
        assert session.pending is first

    def test_submit_without_propose_raises(self, tiny_dataset):
        session = make_session(tiny_dataset, "random")
        lf = session.family.make(0, 1)
        with pytest.raises(ProtocolError, match="propose"):
            session.submit(lf)
        with pytest.raises(ProtocolError, match="propose"):
            session.decline()

    def test_submit_none_is_rejected(self, tiny_dataset):
        session = make_session(tiny_dataset, "random")
        session.propose()
        with pytest.raises(ProtocolError, match="decline"):
            session.submit(None)

    def test_decline_consumes_iteration_only(self, tiny_dataset):
        session = make_session(tiny_dataset, "random")
        pending = session.propose()
        session.decline()
        assert session.iteration == pending.iteration + 1
        assert session.pending is None
        assert pending.dev_index in session.selected
        assert len(session.lineage) == 0

    def test_exhausted_proposal_only_declines(self, tiny_dataset):
        class NoneSelector:
            name = "none"

            def select(self, state):
                return None

        session = DataProgrammingSession(
            tiny_dataset, NoneSelector(), SimulatedUser(tiny_dataset, seed=1), seed=2
        )
        pending = session.propose()
        assert pending.dev_index is None
        with pytest.raises(ProtocolError, match="decline"):
            session.submit(session.family.make(0, 1))
        session.decline()
        assert session.iteration == 1
        assert session.selected == set()

    def test_cancel_discards_without_consuming(self, tiny_dataset):
        session = make_session(tiny_dataset, "random")
        pending = session.propose()
        cancelled = session.cancel()
        assert cancelled is pending
        assert session.pending is None
        assert session.iteration == pending.iteration
        assert session.selected == set()
        # a fresh proposal opens a new interaction with a new token
        assert session.propose().token == pending.token + 1
        assert session.cancel() is not None
        assert session.cancel() is None  # idempotent on empty

    def test_snapshot_with_open_interaction_raises(self, tiny_dataset):
        session = make_session(tiny_dataset, "random")
        session.step()
        session.propose()
        with pytest.raises(ProtocolError, match="snapshot"):
            session.state_dict()
        session.decline()
        state = session.state_dict()
        assert state["iteration"] == session.iteration


class TestTransactionalCommit:
    def test_out_of_range_primitive_leaves_no_trace(self, tiny_dataset):
        session = make_session(tiny_dataset, "random")
        session.step()  # one committed LF so the empty case is not trivial
        pending = session.propose()
        before = transcript(session)
        m_train, m_valid = session._L_train.m, session._L_valid.m
        bad = PrimitiveLF(primitive_id=10**9, primitive="zzz", label=1)
        with pytest.raises(ValueError, match="out of range"):
            session.submit(bad)
        # nothing moved: lineage, votes, counters, and the open interaction
        assert transcript(session) == before
        assert (session._L_train.m, session._L_valid.m) == (m_train, m_valid)
        assert session.pending is pending
        # the interaction is still open — a corrected retry commits fine
        good = session.user.create_lf(pending.dev_index, pending.state)
        session.submit(good)
        assert len(session.lineage) == len(before[0]) + 1
        assert session.pending is None

    def test_valid_split_failure_rolls_back_train(self, tiny_dataset, monkeypatch):
        """A failure staging the *valid* column must not commit the train one."""
        session = make_session(tiny_dataset, "random")
        pending = session.propose()
        lf = session.user.create_lf(pending.dev_index, pending.state)
        assert lf is not None
        boom = RuntimeError("injected stage failure")

        def failing_stage(rows, value):
            raise boom

        monkeypatch.setattr(session._L_valid, "stage_rows", failing_stage)
        m_train = session._L_train.m
        with pytest.raises(RuntimeError, match="injected"):
            session.submit(lf)
        assert session._L_train.m == m_train
        assert len(session.lineage) == 0
        assert session.iteration == pending.iteration
        monkeypatch.undo()
        session.submit(lf)  # the same interaction commits after the fix
        assert len(session.lineage) == 1

    def test_stage_rows_mutates_nothing(self, tiny_dataset):
        from repro.labelmodel.matrix import VoteMatrix

        vm = VoteMatrix(10)
        staged = vm.stage_rows(np.array([3, 1, 7]), 1)
        np.testing.assert_array_equal(staged, [1, 3, 7])
        assert vm.m == 0
        with pytest.raises(ValueError, match="unique"):
            vm.stage_rows(np.array([1, 1]), 1)
        with pytest.raises(ValueError, match="abstain"):
            vm.stage_rows(np.array([1]), 0)
        assert vm.m == 0
