"""Tests for lineage tracking and the LF contextualizer (Eq. 4)."""

import numpy as np
import pytest

from repro.core.contextualizer import LFContextualizer, PercentileTuner
from repro.core.lf import LFFamily
from repro.core.lineage import LineageStore
from repro.labelmodel.matrix import apply_lfs
from repro.labelmodel.metal import MetalLabelModel


@pytest.fixture()
def store_with_lfs(tiny_dataset):
    family = LFFamily(tiny_dataset.primitive_names, tiny_dataset.train.B)
    store = LineageStore(tiny_dataset)
    rng = np.random.default_rng(0)
    eligible = np.flatnonzero(np.asarray(tiny_dataset.train.B.sum(axis=1)).ravel() > 0)
    for it in range(4):
        dev = int(rng.choice(eligible))
        prims = family.primitives_in(dev)
        lf = family.make(int(prims[0]), 1 if it % 2 == 0 else -1)
        store.add(lf, dev, it)
    return store, family


class TestLineageStore:
    def test_records_in_order(self, store_with_lfs):
        store, _ = store_with_lfs
        assert [r.iteration for r in store.records] == [0, 1, 2, 3]
        assert len(store) == 4

    def test_dev_index_bounds(self, tiny_dataset):
        store = LineageStore(tiny_dataset)
        lf = LFFamily(tiny_dataset.primitive_names, tiny_dataset.train.B).make(0, 1)
        with pytest.raises(ValueError):
            store.add(lf, -1, 0)
        with pytest.raises(ValueError):
            store.add(lf, 10**6, 0)

    def test_distance_matrix_shape(self, store_with_lfs, tiny_dataset):
        store, _ = store_with_lfs
        dists = store.distances("train")
        assert dists.shape == (tiny_dataset.train.n, 4)
        valid_dists = store.distances("valid")
        assert valid_dists.shape == (tiny_dataset.valid.n, 4)

    def test_distance_to_own_dev_point_is_zero(self, store_with_lfs):
        store, _ = store_with_lfs
        dists = store.distances("train", "cosine")
        for j, record in enumerate(store.records):
            assert dists[record.dev_index, j] == pytest.approx(0.0, abs=1e-9)

    def test_distances_cached(self, store_with_lfs):
        store, _ = store_with_lfs
        a = store.distances("train")
        b = store.distances("train")
        np.testing.assert_array_equal(a, b)

    def test_exemplar_labels(self, store_with_lfs):
        store, _ = store_with_lfs
        np.testing.assert_array_equal(store.exemplar_labels, [1, -1, 1, -1])

    def test_empty_store_distances(self, tiny_dataset):
        store = LineageStore(tiny_dataset)
        assert store.distances("train").shape == (tiny_dataset.train.n, 0)


class TestContextualizer:
    def test_refinement_zeroes_only_far_votes(self, store_with_lfs, tiny_dataset):
        store, _ = store_with_lfs
        L = apply_lfs(store.lfs, tiny_dataset.train.B)
        ctx = LFContextualizer(percentile=50.0)
        refined = ctx.refine(L, store, "train")
        # refined votes are a subset of the original votes
        changed = refined != L
        assert np.all(refined[changed] == 0)
        assert (refined != 0).sum() <= (L != 0).sum()

    def test_monotone_in_percentile(self, store_with_lfs, tiny_dataset):
        store, _ = store_with_lfs
        L = apply_lfs(store.lfs, tiny_dataset.train.B)
        ctx = LFContextualizer()
        sizes = []
        for p in (10, 30, 50, 70, 90, 100):
            refined = ctx.refine(L, store, "train", percentile=p)
            sizes.append(int((refined != 0).sum()))
        assert sizes == sorted(sizes)

    def test_percentile_100_keeps_everything(self, store_with_lfs, tiny_dataset):
        store, _ = store_with_lfs
        L = apply_lfs(store.lfs, tiny_dataset.train.B)
        refined = LFContextualizer().refine(L, store, "train", percentile=100.0)
        np.testing.assert_array_equal(refined, L)

    def test_dev_point_vote_always_kept(self, store_with_lfs, tiny_dataset):
        store, _ = store_with_lfs
        L = apply_lfs(store.lfs, tiny_dataset.train.B)
        refined = LFContextualizer().refine(L, store, "train", percentile=5.0)
        for j, record in enumerate(store.records):
            assert refined[record.dev_index, j] == L[record.dev_index, j]

    def test_radii_are_percentiles(self, store_with_lfs):
        store, _ = store_with_lfs
        ctx = LFContextualizer(percentile=50.0)
        radii = ctx.radii(store)
        dists = store.distances("train", "cosine")
        np.testing.assert_allclose(radii, np.percentile(dists, 50.0, axis=0))

    def test_column_count_mismatch_raises(self, store_with_lfs, tiny_dataset):
        store, _ = store_with_lfs
        L = apply_lfs(store.lfs[:2], tiny_dataset.train.B)
        with pytest.raises(ValueError, match="lineage"):
            LFContextualizer().refine(L, store, "train")

    def test_invalid_metric(self):
        with pytest.raises(ValueError):
            LFContextualizer(metric="hamming")

    def test_invalid_percentile(self):
        with pytest.raises(ValueError):
            LFContextualizer(percentile=150)

    def test_valid_split_uses_train_radii(self, store_with_lfs, tiny_dataset):
        store, _ = store_with_lfs
        L_valid = apply_lfs(store.lfs, tiny_dataset.valid.B)
        refined = LFContextualizer(percentile=50.0).refine(L_valid, store, "valid")
        assert refined.shape == L_valid.shape


class TestPercentileTuner:
    def test_picks_from_grid(self, store_with_lfs, tiny_dataset):
        store, _ = store_with_lfs
        L_train = apply_lfs(store.lfs, tiny_dataset.train.B)
        L_valid = apply_lfs(store.lfs, tiny_dataset.valid.B)
        tuner = PercentileTuner(grid=(25.0, 75.0))
        prior = tiny_dataset.label_prior
        best = tuner.best_percentile(
            LFContextualizer(),
            L_train,
            L_valid,
            store,
            lambda: MetalLabelModel(class_prior=prior),
            tiny_dataset.valid.y,
        )
        assert best in (25.0, 75.0)

    def test_empty_grid_rejected(self):
        with pytest.raises(ValueError):
            PercentileTuner(grid=())

    def test_metric_name_validated(self):
        with pytest.raises(ValueError):
            PercentileTuner(metric="mcc")

    def test_tie_prefers_least_refinement(self, store_with_lfs, tiny_dataset):
        store, _ = store_with_lfs
        # Constant-label LF votes make every percentile score identically
        # on a constant-y validation set slice -> prefer the largest p.
        L_train = apply_lfs(store.lfs, tiny_dataset.train.B)
        L_valid = np.zeros((tiny_dataset.valid.n, len(store)), dtype=np.int8)
        prior = tiny_dataset.label_prior
        tuner = PercentileTuner(grid=(25.0, 50.0, 100.0))
        best = tuner.best_percentile(
            LFContextualizer(),
            L_train,
            L_valid,
            store,
            lambda: MetalLabelModel(class_prior=prior),
            tiny_dataset.valid.y,
        )
        assert best == 100.0
