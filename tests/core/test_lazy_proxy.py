"""Tests for on-demand (lazy) proxy prediction (ENGINE.md §4).

On warm refits the session defers the end-model proxy refresh to the
first selector read (``SessionState.resolve_proxy``).  The end model does
not change between the refit and the read, so reading selectors see
bit-identical proxies to the eager path; selectors that never read the
proxy skip end-model prediction entirely between cold refits.  Cold
refits always refresh eagerly, so eager (``lazy_proxy=False``) and lazy
configurations coincide exactly whenever every refit is cold — the
backstop the golden-parity suite pins.
"""

import numpy as np

from repro.core.selection import SessionState
from repro.core.session import DataProgrammingSession
from repro.core.seu import SEUSelector
from repro.interactive.basic_selectors import RandomSelector
from repro.interactive.simulated_user import SimulatedUser


def make_session(ds, *, lazy, selector=None, **kwargs):
    return DataProgrammingSession(
        ds,
        selector or RandomSelector(),
        SimulatedUser(ds, seed=123),
        lazy_proxy=lazy,
        seed=42,
        **kwargs,
    )


class CountingEndModel:
    """Wraps an end model, counting full predict_proba calls on train X."""

    def __init__(self, inner):
        self.inner = inner
        self.predict_calls = 0

    def fit(self, X, soft_labels, sample_weight=None, max_iter=None):
        self.inner.fit(X, soft_labels, sample_weight=sample_weight, max_iter=max_iter)
        return self

    def predict_proba(self, X):
        self.predict_calls += 1
        return self.inner.predict_proba(X)

    def predict_proba_rows(self, X, rows):
        return self.inner.predict_proba_rows(X, rows)

    def predict(self, X):
        return self.inner.predict(X)


class TestLazyProxy:
    def test_cold_sessions_identical_to_eager(self, tiny_dataset):
        # Default warm_min_train keeps the tiny dataset fully cold: the
        # lazy switch must then be a no-op, bit for bit.
        a = make_session(tiny_dataset, lazy=True).run(10)
        b = make_session(tiny_dataset, lazy=False).run(10)
        np.testing.assert_array_equal(a.proxy_proba, b.proxy_proba)
        np.testing.assert_array_equal(a.proxy_labels, b.proxy_labels)
        assert not a._proxy_stale

    def test_seu_trajectories_identical_lazy_vs_eager(self, tiny_dataset):
        # The deferred refresh happens before SEU consumes the proxy and
        # the end model is unchanged in between, so the full interactive
        # trajectory must match the eager path exactly — including on the
        # warm cadence.
        def run(lazy):
            return make_session(
                tiny_dataset,
                lazy=lazy,
                selector=SEUSelector(warmup=0),
                warm_min_train=0,
                warm_after=2,
            ).run(12)

        a, b = run(True), run(False)
        assert [lf.name for lf in a.lfs] == [lf.name for lf in b.lfs]
        np.testing.assert_array_equal(a.soft_labels, b.soft_labels)
        assert a.test_score() == b.test_score()

    def test_warm_refits_defer_and_resolve_on_read(self, tiny_dataset):
        session = make_session(
            tiny_dataset, lazy=True, warm_min_train=0, warm_after=2
        )
        # Drive step() directly (run() resolves any deferred refresh on
        # exit) so the mid-session deferral is observable.
        for _ in range(12):
            session.step()
        assert len(session.lfs) > 2
        # step() ends with a refit; on the warm cadence the refresh of the
        # final refit is still deferred.
        assert session._proxy_stale != session._cold_warranted_
        state = session.build_state()
        resolved = state.resolve_proxy()
        assert not session._proxy_stale
        assert resolved is session.proxy_proba
        assert state.proxy_proba is resolved
        # Bit-identical to what the eager path would have produced.
        np.testing.assert_array_equal(
            resolved, session.end_model.predict_proba(session.dataset.train.X)
        )
        np.testing.assert_array_equal(
            session.proxy_labels, np.where(resolved >= 0.5, 1, -1)
        )
        # Memoized in the refit-scoped cache.
        assert state.cache.get("proxy_resolved") is resolved

    def test_non_reading_selector_skips_prediction_between_backstops(
        self, tiny_dataset
    ):
        from repro.endmodel.logistic import SoftLabelLogisticRegression

        def run(lazy):
            counting = CountingEndModel(SoftLabelLogisticRegression())
            session = make_session(
                tiny_dataset,
                lazy=lazy,
                warm_min_train=0,
                warm_after=2,
                end_model=counting,
            )
            session.run(12)
            return counting.predict_calls, session

        lazy_calls, lazy_session = run(True)
        eager_calls, _ = run(False)
        # RandomSelector never reads the proxy: on the lazy path only the
        # cold refits (plus the run()-exit resolution) refresh it, while
        # the eager path refreshes every refit.
        assert eager_calls > lazy_calls
        # run() materializes any deferred refresh before returning, so the
        # public attributes are current at the API boundary.
        assert not lazy_session._proxy_stale
        np.testing.assert_array_equal(
            lazy_session.proxy_proba,
            lazy_session.end_model.predict_proba(lazy_session.dataset.train.X),
        )

    def test_seu_selector_resolves_on_select(self, tiny_dataset):
        session = make_session(
            tiny_dataset,
            lazy=True,
            selector=SEUSelector(warmup=0),
            warm_min_train=0,
            warm_after=2,
        )
        session.run(10)
        state = session.build_state()
        session.selector.select(state)
        assert not session._proxy_stale

    def test_hand_built_state_falls_back_to_full_proxy(self, tiny_dataset):
        n = tiny_dataset.train.n
        state = SessionState(
            dataset=tiny_dataset,
            family=make_session(tiny_dataset, lazy=True).family,
            iteration=0,
            lfs=[],
            L_train=np.zeros((n, 0), dtype=np.int8),
            soft_labels=np.full(n, 0.5),
            entropies=np.full(n, np.log(2)),
            proxy_labels=np.ones(n, dtype=int),
            proxy_proba=np.full(n, 0.5),
        )
        assert state.proxy_provider is None
        np.testing.assert_array_equal(state.resolve_proxy(), np.full(n, 0.5))

    def test_eager_mode_refreshes_every_refit(self, tiny_dataset):
        session = make_session(
            tiny_dataset, lazy=False, warm_min_train=0, warm_after=2
        )
        session.run(8)
        assert not session._proxy_stale
        np.testing.assert_array_equal(
            session.proxy_proba,
            session.end_model.predict_proba(session.dataset.train.X),
        )
