"""Drift-adaptive backstop cadence (``full_refit_every="auto"``, ENGINE.md §10).

The "auto" cadence keeps the integer backstop base but *skips* a due cold
refit when the warm trajectory's measured drift from the last cold anchor
is below ``AUTO_DRIFT_TOL`` (bounded by ``AUTO_MAX_SKIPS`` consecutive
skips).  Its contract: the skip decision is a pure function of
checkpointed state (``_label_anchor_``, ``_backstops_skipped_``, the
refit counter, the live label model), so an interrupted-and-resumed
session reproduces the exact backstop schedule of an uninterrupted one.
"""

import numpy as np
import pytest

import repro.core.engine as engine_mod
from repro.core.engine import AUTO_MAX_SKIPS, AUTO_REFIT_BASE
from repro.core.session import DataProgrammingSession
from repro.interactive.basic_selectors import RandomSelector
from repro.interactive.simulated_user import SimulatedUser
from repro.io.checkpoint import load_checkpoint, save_checkpoint


def make_auto(ds, **kwargs):
    kwargs.setdefault("full_refit_every", "auto")
    return DataProgrammingSession(
        ds,
        RandomSelector(),
        SimulatedUser(ds, seed=123),
        warm_min_train=0,  # exercise the warm path despite the tiny dataset
        seed=42,
        **kwargs,
    )


def step_schedule(session, n):
    """Step ``n`` times; record the per-iteration cadence observables."""
    records = []
    for _ in range(n):
        session.step()
        records.append(
            {
                "cold": session._cold_warranted_,
                "skipped": session._backstops_skipped_,
                "refit_count": session._refit_count,
                "lfs": [lf.name for lf in session.lfs],
            }
        )
    return records


N_TOTAL = 16
N_BEFORE = 8


class TestCheckpointDeterminism:
    def test_resumed_schedule_matches_uninterrupted(self, tiny_dataset, tmp_path):
        straight = make_auto(tiny_dataset)
        want = step_schedule(straight, N_TOTAL)

        first = make_auto(tiny_dataset)
        got = step_schedule(first, N_BEFORE)
        ckpt = tmp_path / "session.ckpt.npz"
        save_checkpoint(ckpt, first.state_dict())

        resumed = make_auto(tiny_dataset)
        resumed.load_state_dict(load_checkpoint(ckpt))
        got += step_schedule(resumed, N_TOTAL - N_BEFORE)

        assert got == want
        assert resumed._backstops_skipped_ == straight._backstops_skipped_
        assert (
            resumed.soft_labels.tobytes() == straight.soft_labels.tobytes()
        ), "resumed posteriors must be bit-identical to the uninterrupted run"

    def test_anchor_round_trips_through_checkpoint(self, tiny_dataset, tmp_path):
        session = make_auto(tiny_dataset)
        step_schedule(session, 3)  # past the first cold fit — anchor exists
        assert session._label_anchor_ is not None

        ckpt = tmp_path / "anchor.ckpt.npz"
        save_checkpoint(ckpt, session.state_dict())
        twin = make_auto(tiny_dataset)
        twin.load_state_dict(load_checkpoint(ckpt))

        assert twin._label_anchor_ is not None
        assert twin._label_anchor_["class"] == session._label_anchor_["class"]
        for name, value in session._label_anchor_["attrs"].items():
            restored = twin._label_anchor_["attrs"][name]
            if isinstance(value, np.ndarray):
                assert restored.tobytes() == value.tobytes(), name
            else:
                assert restored == value, name
        # The skip decision derives from the restored state identically.
        assert twin._label_drift() == session._label_drift()
        assert twin._drift_skip_allowed() == session._drift_skip_allowed()

    def test_legacy_checkpoint_without_cadence_keys_restores(self, tiny_dataset):
        session = make_auto(tiny_dataset)
        step_schedule(session, 2)
        state = session.state_dict()
        state.pop("label_anchor")
        state.pop("backstops_skipped")
        twin = make_auto(tiny_dataset)
        twin.load_state_dict(state)
        assert twin._label_anchor_ is None
        assert twin._backstops_skipped_ == 0


class TestSkipMechanics:
    def test_zero_drift_skips_until_budget_exhausted(self, tiny_dataset, monkeypatch):
        # Infinite tolerance makes every due backstop a skip candidate, so
        # the schedule reduces to the skip-budget arithmetic: after each
        # cold anchor, exactly AUTO_MAX_SKIPS due backstops are skipped,
        # then the next one fires.
        monkeypatch.setattr(engine_mod, "AUTO_DRIFT_TOL", float("inf"))
        monkeypatch.setattr(engine_mod, "AUTO_REFIT_BASE", 2)
        session = make_auto(tiny_dataset, warm_after=2)
        records = step_schedule(session, 18)

        skipped = [r for r in records if r["skipped"] > 0]
        assert skipped, "expected at least one skipped backstop"
        assert max(r["skipped"] for r in records) <= AUTO_MAX_SKIPS
        # A skipped backstop leaves the refit warm on a due count.
        warm_due = [
            r
            for r in records
            if not r["cold"] and (r["refit_count"] - 1) % 2 == 0
        ]
        assert warm_due, "expected a warm refit on a due backstop count"
        # Cold backstops still happen after the budget runs out.
        late_cold = [r for r in records[6:] if r["cold"]]
        assert late_cold, "the skip budget must not starve cold backstops"

    def test_infinite_drift_never_skips(self, tiny_dataset, monkeypatch):
        # Tolerance below any representable drift: "auto" degrades to the
        # fixed-integer cadence exactly.
        monkeypatch.setattr(engine_mod, "AUTO_DRIFT_TOL", -1.0)
        auto = make_auto(tiny_dataset)
        fixed = make_auto(tiny_dataset, full_refit_every=AUTO_REFIT_BASE)
        auto_records = step_schedule(auto, N_TOTAL)
        fixed_records = step_schedule(fixed, N_TOTAL)
        assert [r["cold"] for r in auto_records] == [r["cold"] for r in fixed_records]
        assert all(r["skipped"] == 0 for r in auto_records)

    def test_fixed_integer_cadence_never_engages_skip_state(self, tiny_dataset):
        session = make_auto(tiny_dataset, full_refit_every=10)
        records = step_schedule(session, 12)
        assert all(r["skipped"] == 0 for r in records)
        assert session._label_anchor_ is None


class TestValidation:
    def test_bad_string_rejected(self, tiny_dataset):
        with pytest.raises(ValueError, match="full_refit_every"):
            make_auto(tiny_dataset, full_refit_every="adaptive")

    def test_nonpositive_integer_rejected(self, tiny_dataset):
        with pytest.raises(ValueError, match="full_refit_every"):
            make_auto(tiny_dataset, full_refit_every=0)
