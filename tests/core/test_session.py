"""Tests for the IDP session engine and NemoConfig."""

import numpy as np
import pytest

from repro.core.config import NemoConfig, nemo_config, snorkel_config
from repro.core.session import DataProgrammingSession, LFDeveloper
from repro.interactive.basic_selectors import RandomSelector
from repro.interactive.simulated_user import SimulatedUser


class RefusingUser(LFDeveloper):
    """A user who never manages to write an LF."""

    def create_lf(self, dev_index, state):
        return None


class TestSessionMechanics:
    def test_steps_accumulate_lfs(self, tiny_dataset):
        user = SimulatedUser(tiny_dataset, seed=0)
        session = DataProgrammingSession(
            tiny_dataset, RandomSelector(), user, seed=0
        )
        session.run(5)
        assert session.iteration == 5
        assert 1 <= len(session.lfs) <= 5
        assert session.L_train.shape == (tiny_dataset.train.n, len(session.lfs))

    def test_refusing_user_wastes_iterations_gracefully(self, tiny_dataset):
        session = DataProgrammingSession(
            tiny_dataset, RandomSelector(), RefusingUser(), seed=0
        )
        session.run(3)
        assert session.iteration == 3
        assert len(session.lfs) == 0
        # falls back to prior predictions
        preds = session.predict_test()
        assert set(np.unique(preds)) <= {-1, 1}

    def test_selected_dev_points_not_repeated(self, tiny_dataset):
        user = SimulatedUser(tiny_dataset, seed=0)
        session = DataProgrammingSession(tiny_dataset, RandomSelector(), user, seed=0)
        session.run(20)
        dev = session.lineage.dev_indices
        assert len(set(dev.tolist())) == len(dev)

    def test_test_score_in_unit_interval(self, tiny_dataset):
        user = SimulatedUser(tiny_dataset, seed=0)
        session = DataProgrammingSession(tiny_dataset, RandomSelector(), user, seed=0)
        session.run(8)
        assert 0.0 <= session.test_score() <= 1.0

    def test_deterministic_given_seed(self, tiny_dataset):
        def run_once():
            user = SimulatedUser(tiny_dataset, seed=5)
            session = DataProgrammingSession(
                tiny_dataset, RandomSelector(), user, seed=5
            )
            session.run(10)
            return [lf.name for lf in session.lfs], session.test_score()

        assert run_once() == run_once()

    def test_valid_matrix_tracks_train_columns(self, tiny_dataset):
        user = SimulatedUser(tiny_dataset, seed=1)
        session = DataProgrammingSession(tiny_dataset, RandomSelector(), user, seed=1)
        session.run(6)
        assert session.L_valid.shape == (tiny_dataset.valid.n, len(session.lfs))

    def test_soft_labels_update_after_lfs(self, tiny_dataset):
        user = SimulatedUser(tiny_dataset, seed=2)
        session = DataProgrammingSession(tiny_dataset, RandomSelector(), user, seed=2)
        before = session.soft_labels.copy()
        session.run(5)
        assert not np.allclose(before, session.soft_labels)

    def test_invalid_tune_every(self, tiny_dataset):
        with pytest.raises(ValueError):
            DataProgrammingSession(
                tiny_dataset, RandomSelector(), RefusingUser(), tune_every=0
            )


class TestContextualizedSession:
    def test_percentile_tuned_during_run(self, tiny_dataset):
        user = SimulatedUser(tiny_dataset, seed=3)
        session = nemo_config().create_session(tiny_dataset, user, seed=3)
        session.run(10)
        assert session.active_percentile_ in nemo_config().percentile_grid

    def test_selection_view_differs_from_learning_view(self, tiny_dataset):
        user = SimulatedUser(tiny_dataset, seed=4)
        cfg = NemoConfig(selector="random", contextualize=True, percentile=20.0,
                         tune_percentile=False)
        session = cfg.create_session(tiny_dataset, user, seed=4)
        session.run(10)
        assert session.selection_soft_labels is not None
        # refined (learning) posterior and raw (selection) posterior differ
        assert not np.allclose(session.soft_labels, session.selection_soft_labels)


class TestNemoConfig:
    def test_default_is_full_nemo(self):
        cfg = nemo_config()
        assert cfg.selector == "seu" and cfg.contextualize

    def test_snorkel_config(self):
        cfg = snorkel_config()
        assert cfg.selector == "random" and not cfg.contextualize

    def test_build_selector_names(self):
        for name in ("seu", "random", "abstain", "disagree"):
            assert NemoConfig(selector=name).build_selector() is not None

    def test_unknown_selector(self):
        with pytest.raises(ValueError):
            NemoConfig(selector="maxent").build_selector()

    def test_selector_instance_passthrough(self):
        selector = RandomSelector()
        assert NemoConfig(selector=selector).build_selector() is selector

    def test_label_model_choice(self, tiny_dataset):
        cfg = NemoConfig(selector="random", contextualize=False, label_model="majority")
        user = SimulatedUser(tiny_dataset, seed=0)
        session = cfg.create_session(tiny_dataset, user, seed=0)
        session.run(3)
        from repro.labelmodel.majority import MajorityVote

        assert isinstance(session.label_model_, MajorityVote)
