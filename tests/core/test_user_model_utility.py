"""Tests for user models (Eq. 2/6) and utility functions (Eq. 3)."""

import numpy as np
import pytest
import scipy.sparse as sp

from repro.core.lf import LFFamily
from repro.core.user_model import (
    AccuracyWeightedUserModel,
    ThresholdedUserModel,
    UniformUserModel,
    make_user_model,
)
from repro.core.utility import (
    FullUtility,
    NoCorrectnessUtility,
    NoInformativenessUtility,
    make_utility,
    signed_proxy,
)


@pytest.fixture()
def small_family():
    B = sp.csr_matrix(
        np.array(
            [[1, 1, 0, 0],
             [1, 0, 1, 0],
             [0, 1, 1, 0],
             [0, 0, 0, 1]], dtype=float)
    )
    return LFFamily(["w0", "w1", "w2", "w3"], B)


class TestUserModels:
    def test_accuracy_weights(self):
        acc = np.array([0.9, 0.5, 0.2])
        w_pos, w_neg = AccuracyWeightedUserModel().pick_weights(acc)
        np.testing.assert_allclose(w_pos, acc)
        np.testing.assert_allclose(w_neg, 1 - acc)

    def test_uniform_weights(self):
        acc = np.array([0.9, 0.1])
        w_pos, w_neg = UniformUserModel().pick_weights(acc)
        np.testing.assert_allclose(w_pos, 1.0)
        np.testing.assert_allclose(w_neg, 1.0)

    def test_thresholded_zeroes_bad_lfs(self):
        acc = np.array([0.9, 0.4])
        w_pos, w_neg = ThresholdedUserModel().pick_weights(acc)
        assert w_pos[0] == pytest.approx(0.9)
        assert w_pos[1] == 0.0
        assert w_neg[0] == 0.0  # acc(z0,-1) = 0.1 < 0.5
        assert w_neg[1] == pytest.approx(0.6)

    def test_registry(self):
        assert isinstance(make_user_model("accuracy"), AccuracyWeightedUserModel)
        assert isinstance(make_user_model("uniform"), UniformUserModel)
        with pytest.raises(ValueError):
            make_user_model("gpt")

    def test_probability_eq2(self, small_family):
        # Example 0 contains w0, w1.  With acc = [0.8, 0.6, ...] and
        # prior 0.5:  P(λ_{w0,+1}|x0) = 0.5 * 0.8 / (0.8 + 0.6)
        model = AccuracyWeightedUserModel()
        acc = np.array([0.8, 0.6, 0.5, 0.5])
        lf = small_family.make(0, 1)
        p = model.probability(lf, 0, small_family, acc, 0.5)
        assert p == pytest.approx(0.5 * 0.8 / 1.4)

    def test_probability_zero_if_primitive_absent(self, small_family):
        model = AccuracyWeightedUserModel()
        acc = np.full(4, 0.7)
        lf = small_family.make(3, 1)  # w3 not in example 0
        assert model.probability(lf, 0, small_family, acc, 0.5) == 0.0

    def test_probabilities_form_subdistribution(self, small_family):
        # Summing P(λ|x) over the full family must give <= 1.
        model = AccuracyWeightedUserModel()
        rng = np.random.default_rng(0)
        acc = rng.uniform(0.1, 0.9, 4)
        total = 0.0
        for pid in range(4):
            for label in (1, -1):
                total += model.probability(
                    small_family.make(pid, label), 0, small_family, acc, 0.5
                )
        assert total == pytest.approx(1.0, abs=1e-9)


class TestSignedProxy:
    def test_hard_labels_pass_through(self):
        np.testing.assert_array_equal(signed_proxy(np.array([1, -1])), [1.0, -1.0])

    def test_probabilities_mapped(self):
        np.testing.assert_allclose(signed_proxy(np.array([0.75, 0.25])), [0.5, -0.5])

    def test_invalid_raises(self):
        with pytest.raises(ValueError):
            signed_proxy(np.array([2.0, 0.5]))


class TestUtilities:
    def setup_method(self):
        self.B = sp.csr_matrix(
            np.array([[1, 0], [1, 1], [0, 1]], dtype=float)
        )
        self.entropies = np.array([0.6, 0.2, 0.7])
        self.proxy = np.array([1, -1, 1])

    def test_full_utility_eq3(self):
        util = FullUtility()
        scores = util.scores(self.B, self.entropies, self.proxy)
        # Ψ(λ_{z0,+1}) = 0.6*1 + 0.2*(-1) = 0.4 ; Ψ(λ_{z1,+1}) = -0.2 + 0.7 = 0.5
        np.testing.assert_allclose(scores, [0.4, 0.5])
        np.testing.assert_allclose(
            util.negative_scores(self.B, self.entropies, self.proxy), [-0.4, -0.5]
        )

    def test_no_informativeness_drops_entropy(self):
        scores = NoInformativenessUtility().scores(self.B, self.entropies, self.proxy)
        np.testing.assert_allclose(scores, [0.0, 0.0])

    def test_no_correctness_is_label_symmetric(self):
        util = NoCorrectnessUtility()
        pos = util.scores(self.B, self.entropies, self.proxy)
        neg = util.negative_scores(self.B, self.entropies, self.proxy)
        np.testing.assert_allclose(pos, neg)
        np.testing.assert_allclose(pos, [0.8, 0.9])

    def test_registry(self):
        assert isinstance(make_utility("full"), FullUtility)
        with pytest.raises(ValueError):
            make_utility("entropy-only")

    def test_score_lf_matches_vectorized(self):
        util = FullUtility()
        from repro.core.lf import PrimitiveLF

        lf = PrimitiveLF(1, "w1", -1)
        scalar = util.score_lf(lf, self.B, self.entropies, self.proxy)
        vector = util.negative_scores(self.B, self.entropies, self.proxy)[1]
        assert scalar == pytest.approx(vector)

    def test_soft_proxy_shrinks_correctness(self):
        confident = FullUtility().scores(self.B, self.entropies, np.array([1, -1, 1]))
        hedged = FullUtility().scores(
            self.B, self.entropies, np.array([0.6, 0.4, 0.6])
        )
        assert np.all(np.abs(hedged) <= np.abs(confident) + 1e-12)
