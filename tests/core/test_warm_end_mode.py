"""The warm end-model contract (ENGINE.md §7): minibatch vs lbfgs modes.

Two sessions differing only in ``warm_end_mode`` are stepped in lockstep
with a selector that never reads model state, so their LF trajectories,
votes, and label models coincide by construction.  The contract under
test: warm (between-backstop) end-model refits may diverge between the
modes, but at every full backstop the label/end state must be
bit-identical — the backstop anchor makes each uncapped L-BFGS fit a pure
function of the backstop inputs, independent of the warm path taken to
get there.
"""

import numpy as np
import pytest

from repro.core.session import DataProgrammingSession
from repro.interactive.basic_selectors import RandomSelector
from repro.interactive.simulated_user import SimulatedUser
from repro.multiclass import make_topics_dataset
from repro.multiclass.selection import MCRandomSelector
from repro.multiclass.session import MultiClassSession
from repro.multiclass.simulated_user import MCSimulatedUser

N_ITERATIONS = 22
FULL_REFIT_EVERY = 5


@pytest.fixture(scope="module")
def paired_modes(tiny_dataset):
    """Step a minibatch-mode and an lbfgs-mode session in lockstep."""
    ds = tiny_dataset

    def make(mode: str) -> DataProgrammingSession:
        return DataProgrammingSession(
            ds,
            RandomSelector(),
            SimulatedUser(ds, seed=123),
            warm_min_train=0,  # exercise the warm path despite the small dataset
            full_refit_every=FULL_REFIT_EVERY,
            warm_end_mode=mode,
            seed=42,
        )

    mb, lb = make("minibatch"), make("lbfgs")
    records = []
    for _ in range(N_ITERATIONS):
        mb.step()
        lb.step()
        records.append(
            {
                "backstop_mb": mb._end_uncapped_,
                "backstop_lb": lb._end_uncapped_,
                "soft_mb": mb.soft_labels.copy(),
                "soft_lb": lb.soft_labels.copy(),
                "coef_mb": None if mb.end_model.coef_ is None else mb.end_model.coef_.copy(),
                "coef_lb": None if lb.end_model.coef_ is None else lb.end_model.coef_.copy(),
                "intercept_mb": mb.end_model.intercept_,
                "intercept_lb": lb.end_model.intercept_,
            }
        )
    return mb, lb, records


class TestBackstopBitIdentity:
    def test_cadences_coincide(self, paired_modes):
        _, _, records = paired_modes
        for i, rec in enumerate(records):
            assert rec["backstop_mb"] == rec["backstop_lb"], f"cadence diverged at iter {i}"

    def test_minibatch_path_actually_ran(self, paired_modes):
        mb, lb, records = paired_modes
        assert mb.end_model.mb_t_ > 0, "no minibatch refit happened — the test is vacuous"
        assert lb.end_model.mb_t_ == 0, "lbfgs mode must never take Adam steps"
        assert any(not r["backstop_mb"] for r in records), "expected warm refits"

    def test_backstop_state_bit_identical(self, paired_modes):
        _, _, records = paired_modes
        backstops = [r for r in records if r["backstop_mb"]]
        assert len(backstops) >= 3, "expected multiple full backstops"
        for rec in backstops:
            np.testing.assert_array_equal(rec["soft_mb"], rec["soft_lb"])
            np.testing.assert_array_equal(rec["coef_mb"], rec["coef_lb"])
            assert rec["intercept_mb"] == rec["intercept_lb"]

    def test_warm_refits_do_diverge(self, paired_modes):
        # The modes run genuinely different optimizers between backstops;
        # if every warm refit coincided bitwise, the minibatch path would
        # not actually be exercised (or lbfgs mode would be broken).
        _, _, records = paired_modes
        warm = [r for r in records if not r["backstop_mb"] and r["coef_mb"] is not None]
        assert any(not np.array_equal(r["coef_mb"], r["coef_lb"]) for r in warm)

    def test_covered_buffer_serves_minibatch_refits(self, paired_modes):
        mb, lb, _ = paired_modes
        buf = mb._covered_buf
        assert buf is not None, "minibatch mode should have built the covered buffer"
        assert buf.size > 0
        X = mb.dataset.train.X
        np.testing.assert_array_equal(
            np.asarray(buf.matrix().todense()), np.asarray(X[buf.rows].todense())
        )
        assert lb._covered_buf is None, "lbfgs mode never touches the buffer"


class TestMulticlassBackstopBitIdentity:
    def test_backstop_state_bit_identical(self):
        ds = make_topics_dataset(n_docs=500, seed=0, vocab_scale=6)

        def make(mode: str) -> MultiClassSession:
            return MultiClassSession(
                ds,
                MCRandomSelector(),
                MCSimulatedUser(ds, seed=123),
                warm_min_train=0,
                full_refit_every=FULL_REFIT_EVERY,
                warm_end_mode=mode,
                seed=42,
            )

        mb, lb = make("minibatch"), make("lbfgs")
        n_backstops = 0
        for _ in range(N_ITERATIONS):
            mb.step()
            lb.step()
            assert mb._end_uncapped_ == lb._end_uncapped_
            if mb._end_uncapped_ and mb.end_model.coef_ is not None:
                n_backstops += 1
                np.testing.assert_array_equal(mb.soft_labels, lb.soft_labels)
                np.testing.assert_array_equal(mb.end_model.coef_, lb.end_model.coef_)
                np.testing.assert_array_equal(mb.end_model.intercept_, lb.end_model.intercept_)
        assert n_backstops >= 3
        assert mb.end_model.mb_t_ > 0, "the softmax minibatch path never ran"


class TestWarmEndModeConfiguration:
    def test_rejects_unknown_mode(self, tiny_dataset):
        with pytest.raises(ValueError, match="warm_end_mode"):
            DataProgrammingSession(
                tiny_dataset,
                RandomSelector(),
                SimulatedUser(tiny_dataset, seed=0),
                warm_end_mode="sgd",
            )

    def test_exact_configurations_never_anchor_or_buffer(self, tiny_dataset):
        # warm_min_train above the split size keeps every refit a full
        # backstop — the historical exact path, which must stay untouched.
        session = DataProgrammingSession(
            tiny_dataset,
            RandomSelector(),
            SimulatedUser(tiny_dataset, seed=3),
            warm_min_train=10**6,
            seed=5,
        ).run(8)
        assert session._covered_buf is None
        assert session._end_anchor_ is None
        assert session.end_model.mb_t_ == 0
