"""Tests for primitive LFs and the LF family."""

import numpy as np
import pytest
import scipy.sparse as sp

from repro.core.lf import LFFamily, PrimitiveLF


class TestPrimitiveLF:
    def test_apply_votes_where_primitive_present(self):
        B = sp.csr_matrix(np.array([[1, 0], [0, 1]], dtype=float))
        lf = PrimitiveLF(0, "alpha", 1)
        np.testing.assert_array_equal(lf.apply(B), [1, 0])

    def test_negative_label(self):
        B = sp.csr_matrix(np.array([[1], [1], [0]], dtype=float))
        lf = PrimitiveLF(0, "bad", -1)
        np.testing.assert_array_equal(lf.apply(B), [-1, -1, 0])

    def test_name(self):
        assert PrimitiveLF(3, "perfect", 1).name == "perfect->+1"
        assert PrimitiveLF(3, "awful", -1).name == "awful->-1"

    def test_invalid_label(self):
        with pytest.raises(ValueError):
            PrimitiveLF(0, "x", 0)

    def test_invalid_primitive_id(self):
        with pytest.raises(ValueError):
            PrimitiveLF(-1, "x", 1)

    def test_frozen_and_hashable(self):
        lf = PrimitiveLF(0, "x", 1)
        assert {lf, PrimitiveLF(0, "x", 1)} == {lf}


class TestLFFamily:
    def make_family(self):
        B = sp.csr_matrix(
            np.array([[1, 1, 0], [0, 1, 0], [1, 0, 1], [0, 0, 0]], dtype=float)
        )
        return LFFamily(["a", "b", "c"], B)

    def test_shape_check(self):
        with pytest.raises(ValueError):
            LFFamily(["a"], sp.csr_matrix(np.ones((2, 2))))

    def test_coverage_counts(self):
        fam = self.make_family()
        np.testing.assert_array_equal(fam.coverage_counts(), [2, 2, 1])

    def test_primitives_in(self):
        fam = self.make_family()
        np.testing.assert_array_equal(sorted(fam.primitives_in(0)), [0, 1])
        assert fam.primitives_in(3).size == 0

    def test_make(self):
        fam = self.make_family()
        lf = fam.make(1, -1)
        assert lf.primitive == "b" and lf.label == -1

    def test_make_by_token(self):
        fam = self.make_family()
        assert fam.make_by_token("c", 1).primitive_id == 2
        with pytest.raises(KeyError):
            fam.make_by_token("zzz", 1)

    def test_empirical_accuracies_hard_labels(self):
        fam = self.make_family()
        proxy = np.array([1, -1, 1, -1])
        acc = fam.empirical_accuracies(proxy)
        # primitive "a" covers rows 0, 2 (both +1): acc(a,+1) = 1.0
        assert acc[0] == pytest.approx(1.0)
        # primitive "b" covers rows 0 (+1), 1 (-1): acc = 0.5
        assert acc[1] == pytest.approx(0.5)

    def test_empirical_accuracies_soft_proxy(self):
        fam = self.make_family()
        proxy = np.array([0.9, 0.1, 0.7, 0.5])
        acc = fam.empirical_accuracies(proxy)
        assert acc[0] == pytest.approx(0.8)  # mean of 0.9 and 0.7
        assert acc[1] == pytest.approx(0.5)  # mean of 0.9 and 0.1

    def test_zero_coverage_primitive_gets_half(self):
        B = sp.csr_matrix(np.array([[1, 0]], dtype=float))
        fam = LFFamily(["a", "never"], B)
        acc = fam.empirical_accuracies(np.array([1]))
        assert acc[1] == pytest.approx(0.5)

    def test_accuracy_length_check(self):
        fam = self.make_family()
        with pytest.raises(ValueError):
            fam.empirical_accuracies(np.array([1, -1]))


class TestExampleExplorer:
    """Paper Sec. 7: the primitive-based example explorer."""

    def make_family(self):
        import numpy as np
        import scipy.sparse as sp
        from repro.core.lf import LFFamily

        B = sp.csr_matrix(
            np.array([[1, 1, 0], [0, 1, 0], [1, 0, 1], [0, 1, 0]], dtype=float)
        )
        return LFFamily(["a", "b", "c"], B)

    def test_returns_only_covered_examples(self):
        import numpy as np

        fam = self.make_family()
        found = fam.explore_examples(1, k=10, rng=np.random.default_rng(0))
        assert sorted(found.tolist()) == [0, 1, 3]

    def test_samples_k_when_coverage_large(self):
        import numpy as np

        fam = self.make_family()
        found = fam.explore_examples(1, k=2, rng=np.random.default_rng(0))
        assert len(found) == 2
        assert set(found.tolist()) <= {0, 1, 3}

    def test_empty_coverage(self):
        import numpy as np
        import scipy.sparse as sp
        from repro.core.lf import LFFamily

        B = sp.csr_matrix(np.array([[1, 0]], dtype=float))
        fam = LFFamily(["a", "never"], B)
        assert fam.explore_examples(1, k=3).size == 0

    def test_invalid_k(self):
        import pytest

        fam = self.make_family()
        with pytest.raises(ValueError):
            fam.explore_examples(0, k=0)
