"""Tests for the weighted context-sequence contextualizer (Sec. 3 future work)."""

import numpy as np
import pytest
from hypothesis import HealthCheck, given, settings
from hypothesis import strategies as st

from repro.core.context_sequence import ContextSequenceContextualizer
from repro.core.contextualizer import LFContextualizer
from repro.core.lf import LFFamily
from repro.core.lineage import LineageStore
from repro.labelmodel.matrix import apply_lfs


@pytest.fixture()
def lineage_sequence(tiny_dataset):
    """Three LFs created at iterations 0, 1, 2 from distinct dev points."""
    family = LFFamily(tiny_dataset.primitive_names, tiny_dataset.train.B)
    lineage = LineageStore(tiny_dataset)
    lfs = []
    made = 0
    for pid in range(tiny_dataset.n_primitives):
        covered = np.flatnonzero(
            np.asarray(tiny_dataset.train.B[:, pid].todense()).ravel()
        )
        if covered.size == 0:
            continue
        lf = family.make(pid, 1 if made % 2 == 0 else -1)
        lineage.add(lf, int(covered[made % covered.size]), made)
        lfs.append(lf)
        made += 1
        if made == 3:
            break
    L = apply_lfs(lfs, tiny_dataset.train.B)
    return lineage, L


class TestGammaZeroEquivalence:
    def test_matches_single_point_contextualizer(self, lineage_sequence):
        lineage, L = lineage_sequence
        for percentile in (25.0, 50.0, 90.0):
            single = LFContextualizer(percentile=percentile).refine(L, lineage)
            seq = ContextSequenceContextualizer(gamma=0.0, percentile=percentile).refine(
                L, lineage
            )
            np.testing.assert_array_equal(single, seq)

    def test_context_distances_equal_base_at_gamma_zero(self, lineage_sequence):
        lineage, _ = lineage_sequence
        ctx = ContextSequenceContextualizer(gamma=0.0)
        np.testing.assert_allclose(
            ctx.context_distances(lineage, "train"),
            lineage.distances("train", "cosine"),
        )


class TestContextDistances:
    def test_first_lf_sees_only_itself(self, lineage_sequence):
        # The iteration-0 LF has no earlier context, so any gamma matches.
        lineage, _ = lineage_sequence
        base = lineage.distances("train", "cosine")
        for gamma in (0.0, 0.5, 1.0):
            ctx = ContextSequenceContextualizer(gamma=gamma)
            dists = ctx.context_distances(lineage, "train")
            np.testing.assert_allclose(dists[:, 0], base[:, 0])

    def test_gamma_one_is_uniform_average(self, lineage_sequence):
        lineage, _ = lineage_sequence
        base = lineage.distances("train", "cosine")
        ctx = ContextSequenceContextualizer(gamma=1.0)
        dists = ctx.context_distances(lineage, "train")
        np.testing.assert_allclose(dists[:, 2], base[:, :3].mean(axis=1))

    def test_intermediate_gamma_weights_recency(self, lineage_sequence):
        lineage, _ = lineage_sequence
        base = lineage.distances("train", "cosine")
        gamma = 0.5
        ctx = ContextSequenceContextualizer(gamma=gamma)
        dists = ctx.context_distances(lineage, "train")
        w = np.array([gamma**2, gamma, 1.0])
        expected = (base[:, :3] @ w) / w.sum()
        np.testing.assert_allclose(dists[:, 2], expected)

    def test_max_window_truncates_history(self, lineage_sequence):
        lineage, _ = lineage_sequence
        base = lineage.distances("train", "cosine")
        ctx = ContextSequenceContextualizer(gamma=1.0, max_window=2)
        dists = ctx.context_distances(lineage, "train")
        np.testing.assert_allclose(dists[:, 2], base[:, 1:3].mean(axis=1))

    def test_empty_lineage(self, tiny_dataset):
        lineage = LineageStore(tiny_dataset)
        ctx = ContextSequenceContextualizer()
        assert ctx.context_distances(lineage, "train").shape == (
            tiny_dataset.train.n,
            0,
        )


class TestRefinement:
    def test_refined_votes_subset_of_raw(self, lineage_sequence):
        lineage, L = lineage_sequence
        refined = ContextSequenceContextualizer(gamma=0.7, percentile=50.0).refine(
            L, lineage
        )
        changed = refined != L
        assert (refined[changed] == 0).all()

    def test_percentile_100_keeps_everything(self, lineage_sequence):
        lineage, L = lineage_sequence
        refined = ContextSequenceContextualizer(gamma=0.7, percentile=100.0).refine(
            L, lineage
        )
        np.testing.assert_array_equal(refined, L)

    @given(gamma=st.floats(0.0, 1.0))
    @settings(
        max_examples=10,
        deadline=None,
        # the fixture is read-only; reusing it across generated gammas is safe
        suppress_health_check=[HealthCheck.function_scoped_fixture],
    )
    def test_monotone_in_percentile_any_gamma(self, lineage_sequence, gamma):
        lineage, L = lineage_sequence
        ctx = ContextSequenceContextualizer(gamma=gamma)
        small = ctx.refine(L, lineage, percentile=25.0) != 0
        large = ctx.refine(L, lineage, percentile=75.0) != 0
        assert np.all(~small | large)

    def test_column_mismatch_raises(self, lineage_sequence):
        lineage, L = lineage_sequence
        with pytest.raises(ValueError, match="lineage"):
            ContextSequenceContextualizer().refine(L[:, :1], lineage)

    def test_works_on_valid_split(self, tiny_dataset, lineage_sequence):
        lineage, _ = lineage_sequence
        L_valid = apply_lfs(lineage.lfs, tiny_dataset.valid.B)
        refined = ContextSequenceContextualizer(gamma=0.5).refine(
            L_valid, lineage, split="valid"
        )
        assert refined.shape == L_valid.shape


class TestValidation:
    def test_gamma_range(self):
        with pytest.raises(ValueError, match="gamma"):
            ContextSequenceContextualizer(gamma=1.5)
        with pytest.raises(ValueError, match="gamma"):
            ContextSequenceContextualizer(gamma=-0.1)

    def test_max_window_positive(self):
        with pytest.raises(ValueError, match="max_window"):
            ContextSequenceContextualizer(max_window=0)

    def test_inherits_metric_validation(self):
        with pytest.raises(ValueError, match="metric"):
            ContextSequenceContextualizer(metric="manhattan")


class TestSessionIntegration:
    def test_session_accepts_sequence_contextualizer(self, tiny_dataset):
        from repro.core.session import DataProgrammingSession
        from repro.interactive.basic_selectors import RandomSelector
        from repro.interactive.simulated_user import SimulatedUser

        session = DataProgrammingSession(
            tiny_dataset,
            RandomSelector(),
            SimulatedUser(tiny_dataset, seed=0),
            contextualizer=ContextSequenceContextualizer(gamma=0.5),
            seed=0,
        )
        session.run(6)
        assert 0.0 <= session.test_score() <= 1.0
