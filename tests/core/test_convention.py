"""Unit tests for the VoteConvention contract (repro.core.convention)."""

import numpy as np
import pytest

from repro.core.convention import (
    BINARY,
    MulticlassVoteConvention,
    convention_for,
    multiclass_convention,
)


class TestBinaryConvention:
    def test_alphabet(self):
        assert BINARY.abstain == 0
        assert BINARY.n_classes == 2
        assert BINARY.labels == (1, -1)
        assert BINARY.label_index(1) == 0
        assert BINARY.label_index(-1) == 1
        with pytest.raises(ValueError, match="not a vote value"):
            BINARY.label_index(2)

    def test_validate_matrix(self):
        L = np.array([[1, 0], [-1, 1]])
        assert BINARY.validate_matrix(L).dtype == np.int8
        with pytest.raises(ValueError):
            BINARY.validate_matrix(np.array([[3, 0]]))

    def test_counts(self):
        L = np.array([[1, -1, 0], [1, 1, 1], [0, 0, 0]])
        np.testing.assert_array_equal(BINARY.abstain_counts(L), [1, 0, 3])
        np.testing.assert_array_equal(BINARY.conflict_counts(L), [1, 0, 0])
        np.testing.assert_array_equal(BINARY.coverage_mask(L), [True, True, False])

    def test_posterior_helpers(self):
        proba = np.array([0.9, 0.5, 0.1])
        np.testing.assert_array_equal(BINARY.posterior_to_votes(proba), [1, 1, -1])
        ent = BINARY.posterior_entropy(proba)
        assert ent[1] == pytest.approx(np.log(2))
        assert ent[0] < ent[1]

    def test_proxy_matrix_soft_and_hard(self):
        P = BINARY.proxy_matrix(np.array([0.25, 1.0]))
        np.testing.assert_allclose(P, [[0.25, 0.75], [1.0, 0.0]])
        P_hard = BINARY.proxy_matrix(np.array([1, -1]))
        np.testing.assert_allclose(P_hard, [[1.0, 0.0], [0.0, 1.0]])

    def test_proxy_matrix_rejects_malformed(self):
        # Mixed negatives that aren't hard ±1 labels (e.g. logits) and
        # out-of-range "probabilities" must raise, not silently rescale.
        with pytest.raises(ValueError, match="±1 hard labels or probabilities"):
            BINARY.proxy_matrix(np.array([-2.3, 1.7]))
        with pytest.raises(ValueError, match="±1 hard labels or probabilities"):
            BINARY.proxy_matrix(np.array([0.2, 1.4]))
        with pytest.raises(ValueError, match="lie in"):
            BINARY.proxy_matrix(np.array([[0.2, 1.4], [0.5, 0.5]]))

    def test_signed_agreement_negation_symmetry(self):
        p = np.array([0.1, 0.5, 0.93])
        s = BINARY.signed_agreement(p)
        np.testing.assert_array_equal(s[:, 1], -s[:, 0])
        np.testing.assert_allclose(s[:, 0], 2 * p - 1)

    def test_true_accuracy_table(self):
        import scipy.sparse as sp

        B = sp.csr_matrix(np.array([[1, 0], [1, 0], [0, 0]]))
        y = np.array([1, -1, 1])
        table = BINARY.true_accuracy_table(B, y)
        np.testing.assert_allclose(table[0], [0.5, 0.5])
        np.testing.assert_allclose(table[1], [0.5, 0.5])  # uncovered -> 1/K

    def test_corrupt_label_flips_sign(self):
        rng = np.random.default_rng(0)
        assert BINARY.corrupt_label(1, rng) == -1
        assert BINARY.corrupt_label(-1, rng) == 1

    def test_metric_fn(self):
        fn = BINARY.metric_fn("accuracy")
        assert fn(np.array([1, -1]), np.array([1, 1])) == pytest.approx(0.5)
        with pytest.raises(ValueError):
            BINARY.metric_fn("mcc")


class TestMulticlassConvention:
    def test_alphabet(self):
        conv = MulticlassVoteConvention(4)
        assert conv.abstain == -1
        assert conv.labels == (0, 1, 2, 3)
        assert conv.label_index(3) == 3
        with pytest.raises(ValueError, match="not a vote value"):
            conv.label_index(4)
        with pytest.raises(ValueError, match="n_classes"):
            MulticlassVoteConvention(1)

    def test_counts_match_binary_formula_shape(self):
        conv = MulticlassVoteConvention(3)
        L = np.array([[0, 1, 2], [-1, -1, 1], [2, 2, 2]])
        np.testing.assert_array_equal(conv.abstain_counts(L), [0, 2, 0])
        np.testing.assert_array_equal(conv.conflict_counts(L), [3, 0, 0])
        np.testing.assert_array_equal(conv.coverage_mask(L), [True, True, True])

    def test_posterior_helpers(self):
        conv = MulticlassVoteConvention(3)
        proba = np.array([[0.2, 0.5, 0.3], [1.0, 0.0, 0.0]])
        np.testing.assert_array_equal(conv.posterior_to_votes(proba), [1, 0])
        ent = conv.posterior_entropy(proba)
        assert ent[0] > ent[1]

    def test_signed_agreement_zero_at_chance(self):
        conv = MulticlassVoteConvention(4)
        P = np.full((5, 4), 0.25)
        np.testing.assert_allclose(conv.signed_agreement(P), 0.0, atol=1e-12)

    def test_proxy_matrix_validates(self):
        conv = MulticlassVoteConvention(3)
        with pytest.raises(ValueError, match="2-D"):
            conv.proxy_matrix(np.array([0.5, 0.5]))
        with pytest.raises(ValueError, match="class columns"):
            conv.proxy_matrix(np.full((2, 4), 0.25))

    def test_corrupt_label_uniform_over_others(self):
        conv = MulticlassVoteConvention(3)
        rng = np.random.default_rng(0)
        draws = {conv.corrupt_label(1, rng) for _ in range(50)}
        assert draws == {0, 2}

    def test_metric_fn_accuracy_only(self):
        conv = MulticlassVoteConvention(3)
        fn = conv.metric_fn("accuracy")
        assert fn(np.array([0, 1, 2]), np.array([0, 1, 1])) == pytest.approx(2 / 3)
        with pytest.raises(ValueError, match="accuracy"):
            conv.metric_fn("f1")

    def test_cached_instances(self):
        assert multiclass_convention(5) is multiclass_convention(5)


class TestConventionDispatch:
    def test_binary_dataset(self):
        class FakeBinary:
            pass

        assert convention_for(FakeBinary()) is BINARY

    def test_multiclass_dataset(self):
        class FakeMC:
            n_classes = 7

        conv = convention_for(FakeMC())
        assert isinstance(conv, MulticlassVoteConvention)
        assert conv.n_classes == 7

    def test_k2_multiclass_agreement_matches_binary(self):
        # The chance-centered agreement reduces to 2p-1 for K = 2.
        conv = multiclass_convention(2)
        p = np.array([0.7, 0.3, 0.5])
        P = np.stack([p, 1 - p], axis=1)
        np.testing.assert_allclose(conv.signed_agreement(P)[:, 0], 2 * p - 1)

    def test_default_learners(self):
        from repro.data import load_dataset
        from repro.endmodel.logistic import SoftLabelLogisticRegression
        from repro.labelmodel.metal import MetalLabelModel

        ds = load_dataset("amazon", scale="tiny", seed=0)
        assert isinstance(BINARY.default_label_model_factory(ds)(), MetalLabelModel)
        assert isinstance(BINARY.default_end_model(ds), SoftLabelLogisticRegression)


class TestFailClosed:
    def test_session_state_requires_a_proxy(self):
        from repro.core.selection import MulticlassSessionState, SessionState

        common = dict(
            dataset=None,
            family=None,
            iteration=0,
            lfs=[],
            L_train=np.zeros((3, 0), dtype=np.int8),
            soft_labels=np.full(3, 0.5),
            entropies=np.zeros(3),
        )
        with pytest.raises(TypeError, match="proxy"):
            SessionState(**common)
        with pytest.raises(TypeError, match="proxy_proba"):
            MulticlassSessionState(**common)

    def test_engine_requires_a_convention(self):
        from repro.core.engine import IncrementalSessionEngine

        class ForgotConvention(IncrementalSessionEngine):
            pass

        engine = ForgotConvention()
        with pytest.raises(TypeError, match="VoteConvention"):
            engine._init_engine(
                selector=None,
                user=None,
                label_model_factory=lambda: None,
                end_model=type("M", (), {"fit": lambda self, X, y: None})(),
                contextualizer=None,
                percentile_tuner=None,
                tune_every=1,
            )
