"""Regression tests: incremental engine vs the from-scratch path (binary).

``warm_start=False, full_refit_every=1`` reproduces the original
from-scratch session semantics exactly; these tests drive that baseline
and the incremental default side by side over a 25-iteration session with
*identical LF trajectories* (random selection does not read model state,
so both sessions develop the same LFs) and pin:

* exact agreement of the label-model state at every k-step full-refit
  backstop (the backstop's contract: a cold refit on the same votes is
  deterministic, so the incremental path must coincide there);
* bounded drift of soft labels / entropies / test scores between
  backstops (warm-started EM may settle in a different local optimum of
  the same objective on individual refits — the tolerance is aggregate,
  not per-example);
* equal end-of-session quality.

Everything is fully seeded, so the assertions are deterministic.
"""

import numpy as np
import pytest

from repro.core.session import DataProgrammingSession
from repro.interactive.basic_selectors import RandomSelector
from repro.interactive.simulated_user import SimulatedUser


N_ITERATIONS = 25
FULL_REFIT_EVERY = 10


@pytest.fixture(scope="module")
def paired_run(tiny_dataset):
    """Step a scratch and an incremental session in lockstep; record both."""
    ds = tiny_dataset

    def make(warm: bool) -> DataProgrammingSession:
        return DataProgrammingSession(
            ds,
            RandomSelector(),
            SimulatedUser(ds, seed=123),
            warm_start=warm,
            full_refit_every=FULL_REFIT_EVERY if warm else 1,
            warm_min_train=0,  # exercise the warm path despite the small dataset
            seed=42,
        )

    scratch, incremental = make(False), make(True)
    records = []
    for _ in range(N_ITERATIONS):
        scratch.step()
        incremental.step()
        records.append(
            {
                "lfs_scratch": [lf.name for lf in scratch.lfs],
                "lfs_incremental": [lf.name for lf in incremental.lfs],
                "cold_refit": incremental._cold_warranted_,
                "end_uncapped": incremental._end_uncapped_,
                "d_soft": np.abs(incremental.soft_labels - scratch.soft_labels),
                "d_entropy": np.abs(incremental.entropies - scratch.entropies),
                "score_scratch": scratch.test_score(),
                "score_incremental": incremental.test_score(),
            }
        )
    return scratch, incremental, records


class TestIncrementalMatchesScratch:
    def test_lf_trajectories_identical(self, paired_run):
        _, _, records = paired_run
        for i, rec in enumerate(records):
            assert rec["lfs_scratch"] == rec["lfs_incremental"], f"diverged at iter {i}"

    def test_backstop_restores_scratch_state_exactly(self, paired_run):
        _, _, records = paired_run
        # Every cold *label* refit restores the exact label-model state;
        # test scores coincide (to warm-start history) only at the true
        # backstops, where the end model's fit is also uncapped — the
        # early low-LF regime keeps the label model cold (multimodality
        # guard) but caps the convex end model like any warm refit.
        cold = [r for r in records if r["cold_refit"]]
        assert len(cold) >= 2, "expected multiple cold label refits in 25 iters"
        for rec in cold:
            assert rec["d_soft"].max() < 1e-8
            assert rec["d_entropy"].max() < 1e-8
        backstops = [r for r in records if r["cold_refit"] and r["end_uncapped"]]
        assert len(backstops) >= 2, "expected multiple full backstops in 25 iters"
        for rec in backstops:
            assert abs(rec["score_incremental"] - rec["score_scratch"]) <= 0.02

    def test_soft_labels_within_tolerance_between_backstops(self, paired_run):
        _, _, records = paired_run
        # Aggregate tolerance: warm EM may place individual examples in a
        # different (equally valid) mode, but the posteriors must agree on
        # the bulk of the data at every iteration.
        assert max(r["d_soft"].mean() for r in records) <= 0.2
        assert max(r["d_entropy"].mean() for r in records) <= 0.2

    def test_test_scores_within_tolerance(self, paired_run):
        _, _, records = paired_run
        worst = max(abs(r["score_incremental"] - r["score_scratch"]) for r in records)
        assert worst <= 0.2
        final = records[-1]
        assert abs(final["score_incremental"] - final["score_scratch"]) <= 0.1

    def test_vote_matrices_identical(self, paired_run):
        scratch, incremental, _ = paired_run
        np.testing.assert_array_equal(scratch.L_train, incremental.L_train)
        np.testing.assert_array_equal(scratch.L_valid, incremental.L_valid)


class TestEngineConfiguration:
    def test_full_refit_every_one_equals_scratch_exactly(self, tiny_dataset):
        """``full_refit_every=1`` must force every refit cold even when warm."""
        ds = tiny_dataset

        def make(**kwargs) -> DataProgrammingSession:
            return DataProgrammingSession(
                ds, RandomSelector(), SimulatedUser(ds, seed=7), seed=3, **kwargs
            )

        a = make(warm_start=False, full_refit_every=1).run(12)
        b = make(warm_start=True, full_refit_every=1).run(12)
        np.testing.assert_allclose(a.soft_labels, b.soft_labels, atol=1e-12)
        np.testing.assert_allclose(a.entropies, b.entropies, atol=1e-12)
        assert a.test_score() == b.test_score()

    def test_rejects_bad_full_refit_every(self, tiny_dataset):
        with pytest.raises(ValueError, match="full_refit_every"):
            DataProgrammingSession(
                tiny_dataset,
                RandomSelector(),
                SimulatedUser(tiny_dataset, seed=0),
                full_refit_every=0,
            )

    def test_l_train_setter_round_trips(self, tiny_dataset):
        session = DataProgrammingSession(
            tiny_dataset, RandomSelector(), SimulatedUser(tiny_dataset, seed=0), seed=1
        ).run(5)
        before = session.L_train.copy()
        session.L_train = before  # the batch session assigns dense arrays
        np.testing.assert_array_equal(session.L_train, before)

    def test_selector_cache_cleared_on_refit(self, tiny_dataset):
        from repro.core.seu import SEUSelector

        session = DataProgrammingSession(
            tiny_dataset, SEUSelector(warmup=0), SimulatedUser(tiny_dataset, seed=5), seed=9
        )
        session.run(6)
        n_lfs = len(session.lfs)
        assert n_lfs > 0
        # After the last refit the cache must only hold entries written by
        # selections that happened *after* it — step() ends with a refit,
        # so right after run() the cache is empty.
        assert session._selector_cache == {}
        state = session.build_state()
        session.selector.expected_utilities(state)
        assert session._selector_cache, "selection should memoize into the session cache"
