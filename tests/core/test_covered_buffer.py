"""Unit tests for the grow-only covered-feature buffer (ENGINE.md §7)."""

import numpy as np
import pytest
import scipy.sparse as sp

from repro.core.covered import CoveredFeatureBuffer


def _random_X(seed: int, n: int = 120, d: int = 17):
    return sp.random(n, d, density=0.3, format="csr", random_state=seed)


class TestSync:
    def test_incremental_growth_matches_slice(self):
        X = _random_X(0)
        buf = CoveredFeatureBuffer(X)
        rng = np.random.default_rng(1)
        covered = np.zeros(X.shape[0], dtype=bool)
        for _ in range(7):
            covered[rng.choice(X.shape[0], 15)] = True
            assert buf.sync(covered)
            assert buf.size == covered.sum()
            np.testing.assert_array_equal(
                np.asarray(buf.matrix().todense()),
                np.asarray(X[buf.rows].todense()),
            )
        assert set(buf.rows.tolist()) == set(np.flatnonzero(covered).tolist())

    def test_rows_in_first_covered_order(self):
        X = _random_X(2, n=10)
        buf = CoveredFeatureBuffer(X)
        covered = np.zeros(10, dtype=bool)
        covered[[7, 8]] = True
        assert buf.sync(covered)
        covered[[1, 3]] = True
        assert buf.sync(covered)
        np.testing.assert_array_equal(buf.rows, [7, 8, 1, 3])

    def test_noop_sync_appends_nothing(self):
        X = _random_X(3, n=20)
        buf = CoveredFeatureBuffer(X)
        covered = np.zeros(20, dtype=bool)
        covered[:5] = True
        assert buf.sync(covered)
        assert buf.sync(covered)
        assert buf.size == 5

    def test_dense_inputs_supported(self):
        X = np.asarray(_random_X(4).todense())
        buf = CoveredFeatureBuffer(X)
        covered = np.zeros(X.shape[0], dtype=bool)
        covered[::3] = True
        assert buf.sync(covered)
        np.testing.assert_array_equal(buf.matrix(), X[buf.rows])


class TestMonotonicityGuard:
    def test_regression_reported_not_assumed(self):
        X = _random_X(5, n=30)
        buf = CoveredFeatureBuffer(X)
        covered = np.zeros(30, dtype=bool)
        covered[:10] = True
        assert buf.sync(covered)
        covered[4] = False  # a covered row un-covers: contract violation
        assert buf.sync(covered) is False

    def test_wrong_shape_rejected(self):
        buf = CoveredFeatureBuffer(_random_X(6, n=30))
        assert buf.sync(np.zeros(29, dtype=bool)) is False


class TestPreload:
    def test_restores_explicit_row_order(self):
        X = _random_X(7)
        rows = np.array([9, 2, 44, 13], dtype=np.intp)
        buf = CoveredFeatureBuffer(X)
        buf.preload(rows)
        np.testing.assert_array_equal(buf.rows, rows)
        np.testing.assert_array_equal(
            np.asarray(buf.matrix().todense()), np.asarray(X[rows].todense())
        )
        # Subsequent syncs continue from the preloaded coverage.
        covered = np.zeros(X.shape[0], dtype=bool)
        covered[rows] = True
        covered[50] = True
        assert buf.sync(covered)
        np.testing.assert_array_equal(buf.rows, [9, 2, 44, 13, 50])

    def test_requires_empty_buffer(self):
        buf = CoveredFeatureBuffer(_random_X(8))
        buf.preload(np.array([1, 2], dtype=np.intp))
        with pytest.raises(ValueError, match="empty"):
            buf.preload(np.array([3], dtype=np.intp))


class TestEngineFallback:
    def test_engine_falls_back_to_slice_on_regression(self, tiny_dataset):
        from repro.core.session import DataProgrammingSession
        from repro.interactive.basic_selectors import RandomSelector
        from repro.interactive.simulated_user import SimulatedUser

        session = DataProgrammingSession(
            tiny_dataset,
            RandomSelector(),
            SimulatedUser(tiny_dataset, seed=3),
            warm_min_train=0,
            full_refit_every=5,
            seed=11,
        ).run(8)
        buf = session._covered_buf
        assert buf is not None and buf.size > 0
        # Simulate a (contract-violating) coverage regression: the engine
        # must serve the exact slice and drop the stale buffer.
        covered = np.zeros(tiny_dataset.train.n, dtype=bool)
        covered[buf.rows[1:]] = True
        X_cov, targets = session._covered_training_set(covered)
        idx = np.flatnonzero(covered)
        np.testing.assert_array_equal(
            np.asarray(X_cov.todense()),
            np.asarray(tiny_dataset.train.X[idx].todense()),
        )
        np.testing.assert_array_equal(targets, session.soft_labels[idx])
        assert session._covered_buf is None
