"""Shared fixtures for core tests: a small featurized dataset and helpers."""

import numpy as np
import pytest

from repro.core.lf import LFFamily
from repro.core.selection import SessionState
from repro.data import load_dataset
from repro.labelmodel.base import posterior_entropy


@pytest.fixture(scope="session")
def tiny_dataset():
    return load_dataset("amazon", scale="tiny", seed=0)


@pytest.fixture()
def empty_state(tiny_dataset):
    """A no-LF session state over the tiny dataset."""
    n = tiny_dataset.train.n
    prior = tiny_dataset.label_prior
    rng = np.random.default_rng(0)
    soft = np.full(n, prior)
    return SessionState(
        dataset=tiny_dataset,
        family=LFFamily(tiny_dataset.primitive_names, tiny_dataset.train.B),
        iteration=0,
        lfs=[],
        L_train=np.zeros((n, 0), dtype=np.int8),
        soft_labels=soft,
        entropies=posterior_entropy(soft),
        proxy_labels=np.where(rng.random(n) < prior, 1, -1),
        proxy_proba=np.full(n, prior),
        selected=set(),
        rng=np.random.default_rng(1),
    )
