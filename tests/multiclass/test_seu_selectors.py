"""Tests for multiclass selectors: SEU, random, abstain, disagree, uncertainty."""

import numpy as np
import pytest

from repro.multiclass.lf import MultiClassLFFamily
from repro.multiclass.matrix import apply_mc_lfs
from repro.multiclass.base import posterior_entropy_mc
from repro.multiclass.majority import MCMajorityVote
from repro.multiclass.selection import (
    MCAbstainSelector,
    MCDisagreeSelector,
    MCRandomSelector,
    MCSessionState,
    MCUncertaintySelector,
)
from repro.multiclass.seu import MCSEUSelector


def state_with_lfs(dataset, primitive_ids_labels, seed=0):
    """A session state holding the given (primitive_id, label) LFs."""
    family = MultiClassLFFamily(dataset.primitive_names, dataset.train.B, dataset.n_classes)
    lfs = [family.make(pid, lbl) for pid, lbl in primitive_ids_labels]
    L = apply_mc_lfs(lfs, dataset.train.B)
    model = MCMajorityVote(n_classes=dataset.n_classes, class_priors=dataset.class_priors)
    soft = model.fit_predict_proba(L)
    rng = np.random.default_rng(seed)
    return MCSessionState(
        dataset=dataset,
        family=family,
        iteration=len(lfs),
        lfs=lfs,
        L_train=L,
        soft_labels=soft,
        entropies=posterior_entropy_mc(soft),
        proxy_proba=soft.copy(),
        selected=set(),
        rng=rng,
    )


class TestBaselineSelectors:
    def test_random_selects_eligible(self, empty_mc_state):
        idx = MCRandomSelector().select(empty_mc_state)
        assert idx is not None
        assert empty_mc_state.candidate_mask()[idx]

    def test_random_exhausts_to_none(self, topics_dataset, empty_mc_state):
        empty_mc_state.selected.update(range(topics_dataset.train.n))
        assert MCRandomSelector().select(empty_mc_state) is None

    def test_abstain_prefers_uncovered(self, topics_dataset):
        state = state_with_lfs(topics_dataset, [(0, 0), (1, 1)])
        idx = MCAbstainSelector().select(state)
        assert (state.L_train[idx] == -1).all()  # fully abstained row exists

    def test_abstain_falls_back_to_random_without_lfs(self, empty_mc_state):
        assert MCAbstainSelector().select(empty_mc_state) is not None

    def test_disagree_prefers_conflicts(self, topics_dataset):
        # Find two primitives co-occurring somewhere, vote different classes.
        B = topics_dataset.train.B
        co = (B.T @ B).toarray()
        np.fill_diagonal(co, 0)
        z1, z2 = np.unravel_index(np.argmax(co), co.shape)
        state = state_with_lfs(topics_dataset, [(int(z1), 0), (int(z2), 1)])
        idx = MCDisagreeSelector().select(state)
        row = state.L_train[idx]
        assert (row == 0).any() and (row == 1).any()

    def test_uncertainty_picks_max_entropy(self, topics_dataset):
        state = state_with_lfs(topics_dataset, [(0, 0)])
        idx = MCUncertaintySelector().select(state)
        mask = state.candidate_mask()
        best = np.max(np.where(mask, state.entropies, -np.inf))
        assert state.entropies[idx] == pytest.approx(best)

    def test_selected_examples_excluded(self, topics_dataset):
        state = state_with_lfs(topics_dataset, [(0, 0)])
        state.selected.update({3, 7})
        mask = state.candidate_mask()
        assert not mask[3] and not mask[7]


class TestSEUSelector:
    def test_cold_start_is_random_but_eligible(self, empty_mc_state):
        idx = MCSEUSelector(warmup=3).select(empty_mc_state)
        assert idx is not None
        assert empty_mc_state.candidate_mask()[idx]

    def test_cold_start_requires_two_classes(self, topics_dataset):
        state = state_with_lfs(topics_dataset, [(0, 0), (1, 0), (2, 0), (3, 0)])
        assert MCSEUSelector(warmup=3)._in_cold_start(state)
        state2 = state_with_lfs(topics_dataset, [(0, 0), (1, 1), (2, 0), (3, 1)])
        assert not MCSEUSelector(warmup=3)._in_cold_start(state2)

    def test_min_classes_knob(self, topics_dataset):
        state = state_with_lfs(topics_dataset, [(0, 0), (1, 1), (2, 0), (3, 1)])
        assert MCSEUSelector(warmup=3, min_classes=4)._in_cold_start(state)

    def test_vectorized_matches_reference(self, topics_dataset):
        state = state_with_lfs(topics_dataset, [(0, 0), (1, 1), (2, 2), (3, 3)])
        rng = np.random.default_rng(0)
        state.proxy_proba = rng.dirichlet(np.ones(4), size=state.n_train)
        sel = MCSEUSelector()
        vec = sel.expected_utilities(state)
        sample = rng.choice(state.n_train, size=20, replace=False)
        ref = np.array([sel.expected_utility_of(int(i), state) for i in sample])
        np.testing.assert_allclose(vec[sample], ref, atol=1e-10)

    def test_uniform_user_model_changes_ranking_inputs(self, topics_dataset):
        state = state_with_lfs(topics_dataset, [(0, 0), (1, 1), (2, 2), (3, 3)])
        rng = np.random.default_rng(1)
        state.proxy_proba = rng.dirichlet(np.ones(4), size=state.n_train)
        acc_scores = MCSEUSelector(user_model="accuracy").expected_utilities(state)
        uni_scores = MCSEUSelector(user_model="uniform").expected_utilities(state)
        assert not np.allclose(acc_scores, uni_scores)

    def test_selects_argmax_after_warmup(self, topics_dataset):
        state = state_with_lfs(topics_dataset, [(0, 0), (1, 1), (2, 2), (3, 3)])
        rng = np.random.default_rng(2)
        state.proxy_proba = rng.dirichlet(np.ones(4), size=state.n_train)
        sel = MCSEUSelector(warmup=1)
        idx = sel.select(state)
        scores = sel.expected_utilities(state)
        mask = state.candidate_mask()
        assert scores[idx] == pytest.approx(np.max(np.where(mask, scores, -np.inf)))

    def test_validation(self):
        with pytest.raises(ValueError, match="warmup"):
            MCSEUSelector(warmup=-1)
        with pytest.raises(ValueError, match="min_classes"):
            MCSEUSelector(min_classes=0)
