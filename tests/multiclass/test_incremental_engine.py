"""Regression tests: incremental engine vs the from-scratch path (K-class).

The multiclass twin of ``tests/core/test_incremental_engine.py``: a
25-iteration session with identical LF trajectories, exact agreement at
every k-step full-refit backstop, bounded aggregate drift in between, and
equal end-of-session quality.  Fully seeded and deterministic.
"""

import numpy as np
import pytest

from repro.multiclass.selection import MCRandomSelector
from repro.multiclass.session import MultiClassSession
from repro.multiclass.simulated_user import MCSimulatedUser


N_ITERATIONS = 25
FULL_REFIT_EVERY = 10


@pytest.fixture(scope="module")
def paired_mc_run(topics_dataset):
    """Step a scratch and an incremental session in lockstep; record both."""
    ds = topics_dataset

    def make(warm: bool) -> MultiClassSession:
        return MultiClassSession(
            ds,
            MCRandomSelector(),
            MCSimulatedUser(ds, seed=123),
            warm_start=warm,
            full_refit_every=FULL_REFIT_EVERY if warm else 1,
            warm_min_train=0,  # exercise the warm path despite the small dataset
            seed=42,
        )

    scratch, incremental = make(False), make(True)
    records = []
    for _ in range(N_ITERATIONS):
        scratch.step()
        incremental.step()
        records.append(
            {
                "lfs_scratch": [lf.name for lf in scratch.lfs],
                "lfs_incremental": [lf.name for lf in incremental.lfs],
                "cold_refit": incremental._cold_warranted_,
                "end_uncapped": incremental._end_uncapped_,
                "d_soft": np.abs(incremental.soft_labels - scratch.soft_labels),
                "d_entropy": np.abs(incremental.entropies - scratch.entropies),
                "score_scratch": scratch.test_score(),
                "score_incremental": incremental.test_score(),
            }
        )
    return scratch, incremental, records


class TestIncrementalMatchesScratch:
    def test_lf_trajectories_identical(self, paired_mc_run):
        _, _, records = paired_mc_run
        for i, rec in enumerate(records):
            assert rec["lfs_scratch"] == rec["lfs_incremental"], f"diverged at iter {i}"

    def test_backstop_restores_scratch_state_exactly(self, paired_mc_run):
        _, _, records = paired_mc_run
        # Label-model exactness at every cold label refit; score agreement
        # at the true backstops where the convex end model is also fitted
        # uncapped (the early low-LF regime caps it like a warm refit —
        # see tests/core/test_incremental_engine.py).
        cold = [r for r in records if r["cold_refit"]]
        assert len(cold) >= 2, "expected multiple cold label refits in 25 iters"
        for rec in cold:
            assert rec["d_soft"].max() < 1e-8
            assert rec["d_entropy"].max() < 1e-8
        backstops = [r for r in records if r["cold_refit"] and r["end_uncapped"]]
        assert len(backstops) >= 2, "expected multiple full backstops in 25 iters"
        for rec in backstops:
            assert abs(rec["score_incremental"] - rec["score_scratch"]) <= 0.02

    def test_soft_labels_within_tolerance_between_backstops(self, paired_mc_run):
        _, _, records = paired_mc_run
        # Aggregate tolerance: Dawid–Skene EM is more multimodal than the
        # binary model (full confusion matrices), so individual refits may
        # settle in a different mode; the bulk posterior must still agree.
        assert max(r["d_soft"].mean() for r in records) <= 0.15
        assert max(r["d_entropy"].mean() for r in records) <= 0.35

    def test_test_scores_within_tolerance(self, paired_mc_run):
        _, _, records = paired_mc_run
        # The topics test split has 50 examples, so one borderline flip
        # moves the score by 0.02 — the scratch path's own step-to-step
        # score swings reach ~0.08; the tolerance sits above that noise.
        worst = max(abs(r["score_incremental"] - r["score_scratch"]) for r in records)
        assert worst <= 0.25
        final = records[-1]
        assert abs(final["score_incremental"] - final["score_scratch"]) <= 0.2

    def test_vote_matrices_identical(self, paired_mc_run):
        scratch, incremental, _ = paired_mc_run
        np.testing.assert_array_equal(scratch.L_train, incremental.L_train)
        np.testing.assert_array_equal(scratch.L_valid, incremental.L_valid)


class TestEngineConfiguration:
    def test_full_refit_every_one_equals_scratch_exactly(self, topics_dataset):
        ds = topics_dataset

        def make(**kwargs) -> MultiClassSession:
            return MultiClassSession(
                ds, MCRandomSelector(), MCSimulatedUser(ds, seed=7), seed=3, **kwargs
            )

        a = make(warm_start=False, full_refit_every=1).run(12)
        b = make(warm_start=True, full_refit_every=1).run(12)
        np.testing.assert_allclose(a.soft_labels, b.soft_labels, atol=1e-12)
        np.testing.assert_allclose(a.entropies, b.entropies, atol=1e-12)
        assert a.test_score() == b.test_score()

    def test_rejects_bad_full_refit_every(self, topics_dataset):
        with pytest.raises(ValueError, match="full_refit_every"):
            MultiClassSession(
                topics_dataset,
                MCRandomSelector(),
                MCSimulatedUser(topics_dataset, seed=0),
                full_refit_every=0,
            )

    def test_seu_selector_cache_used_and_cleared(self, topics_dataset):
        from repro.multiclass.seu import MCSEUSelector

        session = MultiClassSession(
            topics_dataset,
            MCSEUSelector(warmup=0),
            MCSimulatedUser(topics_dataset, seed=5),
            seed=9,
        ).run(6)
        assert len(session.lfs) > 0
        assert session._selector_cache == {}
        state = session.build_state()
        session.selector.expected_utilities(state)
        assert session._selector_cache, "selection should memoize into the session cache"
