"""Tests for multiclass user models and LF utility functions."""

import numpy as np
import pytest
import scipy.sparse as sp
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.multiclass.lf import MultiClassLFFamily
from repro.multiclass.user_model import (
    MCAccuracyWeightedUserModel,
    MCThresholdedUserModel,
    MCUniformUserModel,
    make_mc_user_model,
)
from repro.multiclass.utility import (
    MCFullUtility,
    MCNoCorrectnessUtility,
    MCNoInformativenessUtility,
    make_mc_utility,
    signed_agreement,
)


def family_3x3():
    B = sp.csr_matrix(np.array([[1, 1, 0], [0, 1, 1], [1, 0, 1]]))
    return MultiClassLFFamily(["a", "b", "c"], B, 3)


class TestSignedAgreement:
    def test_zero_at_chance(self):
        P = np.full((5, 4), 0.25)
        np.testing.assert_allclose(signed_agreement(P), 0.0, atol=1e-12)

    def test_one_at_certainty(self):
        P = np.zeros((1, 3))
        P[0, 1] = 1.0
        s = signed_agreement(P)
        assert s[0, 1] == pytest.approx(1.0)
        assert s[0, 0] == pytest.approx(-0.5)

    def test_recovers_binary_formula(self):
        p = np.array([[0.7, 0.3], [0.1, 0.9]])
        np.testing.assert_allclose(signed_agreement(p), 2 * p - 1)

    def test_rejects_one_dim(self):
        with pytest.raises(ValueError, match="2-D"):
            signed_agreement(np.array([0.5, 0.5]))

    def test_rejects_out_of_range(self):
        with pytest.raises(ValueError, match="lie in"):
            signed_agreement(np.array([[1.5, -0.5]]))

    @given(
        st.integers(2, 6),
        st.integers(1, 10),
    )
    @settings(max_examples=25, deadline=None)
    def test_row_sums_are_zero(self, k, n):
        # Σ_k s_k = (K·1 − K)/(K−1) = 0 for any distribution row.
        rng = np.random.default_rng(k * 100 + n)
        P = rng.dirichlet(np.ones(k), size=n)
        np.testing.assert_allclose(signed_agreement(P).sum(axis=1), 0.0, atol=1e-9)


class TestUserModels:
    def test_accuracy_weights_are_accuracies(self):
        acc = np.array([[0.5, 0.3, 0.2], [0.1, 0.8, 0.1]])
        np.testing.assert_allclose(
            MCAccuracyWeightedUserModel().pick_weights(acc), acc
        )

    def test_uniform_weights_are_ones(self):
        acc = np.random.default_rng(0).dirichlet(np.ones(3), size=4)
        np.testing.assert_allclose(MCUniformUserModel().pick_weights(acc), 1.0)

    def test_thresholded_zeroes_below_chance(self):
        acc = np.array([[0.5, 0.3, 0.2]])
        w = MCThresholdedUserModel().pick_weights(acc)  # default threshold 1/3
        assert w[0, 0] == pytest.approx(0.5)
        assert w[0, 2] == 0.0

    def test_probability_zero_for_absent_primitive(self):
        family = family_3x3()
        acc = np.full((3, 3), 1 / 3)
        lf = family.make(2, 0)  # primitive c absent from example 0
        p = MCAccuracyWeightedUserModel().probability(
            lf, 0, family, acc, np.full(3, 1 / 3)
        )
        assert p == 0.0

    def test_probabilities_form_subdistribution(self):
        family = family_3x3()
        rng = np.random.default_rng(0)
        acc = rng.dirichlet(np.ones(3), size=3)
        priors = np.array([0.2, 0.5, 0.3])
        model = MCAccuracyWeightedUserModel()
        total = 0.0
        for label in range(3):
            for pid in range(3):
                total += model.probability(family.make(pid, label), 0, family, acc, priors)
        # sums to Σ_k P(k) over classes with any candidate = 1
        assert total == pytest.approx(1.0)

    def test_registry(self):
        assert isinstance(make_mc_user_model("accuracy"), MCAccuracyWeightedUserModel)
        assert isinstance(make_mc_user_model("uniform"), MCUniformUserModel)
        with pytest.raises(ValueError, match="unknown user model"):
            make_mc_user_model("nope")

    def test_threshold_validation(self):
        with pytest.raises(ValueError, match="threshold"):
            MCThresholdedUserModel(threshold=1.0)


class TestUtilities:
    def setup_method(self):
        self.B = sp.csr_matrix(np.array([[1, 0], [1, 1], [0, 1]]))
        self.entropies = np.array([1.0, 0.5, 0.2])
        rng = np.random.default_rng(0)
        self.P = rng.dirichlet(np.ones(3), size=3)

    def test_full_matches_manual(self):
        util = MCFullUtility().scores(self.B, self.entropies, self.P)
        s = signed_agreement(self.P)
        expected = np.zeros((2, 3))
        for z in range(2):
            covered = np.asarray(self.B[:, z].todense()).ravel() > 0
            for k in range(3):
                expected[z, k] = (self.entropies[covered] * s[covered, k]).sum()
        np.testing.assert_allclose(util, expected)

    def test_no_informativeness_drops_entropy(self):
        flat = MCNoInformativenessUtility().scores(self.B, self.entropies, self.P)
        ones = MCNoInformativenessUtility().scores(self.B, np.ones(3), self.P)
        np.testing.assert_allclose(flat, ones)

    def test_no_correctness_is_class_symmetric(self):
        util = MCNoCorrectnessUtility().scores(self.B, self.entropies, self.P)
        np.testing.assert_allclose(util[:, 0], util[:, 1])
        np.testing.assert_allclose(util[:, 0], util[:, 2])

    def test_score_lf_reads_table(self):
        family = MultiClassLFFamily(["a", "b"], self.B, 3)
        lf = family.make(1, 2)
        table = MCFullUtility().scores(self.B, self.entropies, self.P)
        scalar = MCFullUtility().score_lf(lf, self.B, self.entropies, self.P)
        assert scalar == pytest.approx(table[1, 2])

    def test_registry(self):
        assert isinstance(make_mc_utility("full"), MCFullUtility)
        with pytest.raises(ValueError, match="unknown utility"):
            make_mc_utility("nope")

    def test_full_utility_zero_under_uniform_proxy(self):
        # The chance-centered design: an uninformative end model produces
        # zero utility for every candidate LF instead of a negative bias.
        P = np.full((3, 3), 1 / 3)
        util = MCFullUtility().scores(self.B, self.entropies, P)
        np.testing.assert_allclose(util, 0.0, atol=1e-12)
