"""Tests for the multiclass method registry and evaluation protocol."""

import numpy as np
import pytest

from repro.multiclass.experiments import (
    MC_METHOD_NAMES,
    evaluate_mc_method,
    make_mc_label_model_factory,
    make_mc_method,
)
from repro.multiclass.contextualizer import MCContextualizer
from repro.multiclass.dawid_skene import MCDawidSkeneModel
from repro.multiclass.majority import MCMajorityVote
from repro.multiclass.seu import MCSEUSelector
from repro.multiclass.session import MultiClassSession


class TestRegistry:
    def test_unknown_method_rejected(self):
        with pytest.raises(ValueError, match="unknown multiclass method"):
            make_mc_method("nemo")  # the binary name is not an MC name

    @pytest.mark.parametrize("name", MC_METHOD_NAMES)
    def test_every_method_builds_a_session(self, name, topics_dataset):
        session = make_mc_method(name)(topics_dataset, 0)
        assert isinstance(session, MultiClassSession)

    def test_nemo_mc_wiring(self, topics_dataset):
        session = make_mc_method("nemo-mc")(topics_dataset, 0)
        assert isinstance(session.selector, MCSEUSelector)
        assert isinstance(session.contextualizer, MCContextualizer)
        assert isinstance(session.label_model_factory(), MCDawidSkeneModel)

    def test_snorkel_mc_wiring(self, topics_dataset):
        session = make_mc_method("snorkel-mc")(topics_dataset, 0)
        assert session.contextualizer is None
        assert isinstance(session.label_model_factory(), MCDawidSkeneModel)

    def test_majority_variant_wiring(self, topics_dataset):
        session = make_mc_method("snorkel-mc-majority")(topics_dataset, 0)
        assert isinstance(session.label_model_factory(), MCMajorityVote)

    def test_label_model_factory_unknown_rejected(self, topics_dataset):
        with pytest.raises(ValueError, match="unknown multiclass label model"):
            make_mc_label_model_factory("metal", topics_dataset)

    def test_factories_use_dataset_priors(self, topics_dataset):
        model = make_mc_label_model_factory("majority", topics_dataset)()
        np.testing.assert_allclose(model.class_priors, topics_dataset.class_priors)


class TestEvaluation:
    def test_curves_have_protocol_shape(self, topics_dataset):
        result = evaluate_mc_method(
            "snorkel-mc", topics_dataset, n_iterations=6, eval_every=3, n_seeds=2
        )
        assert len(result.curves) == 2
        for curve in result.curves:
            assert curve.iterations == [3, 6]
            assert all(0.0 <= s <= 1.0 for s in curve.scores)
        assert 0.0 <= result.summary_mean <= 1.0

    def test_seeds_are_stable(self, topics_dataset):
        a = evaluate_mc_method(
            "snorkel-mc", topics_dataset, n_iterations=5, eval_every=5, n_seeds=1
        )
        b = evaluate_mc_method(
            "snorkel-mc", topics_dataset, n_iterations=5, eval_every=5, n_seeds=1
        )
        assert a.curves[0].scores == b.curves[0].scores

    def test_different_methods_different_seeds(self, topics_dataset):
        # seed derivation includes the method name, so methods do not share
        # user randomness (guards against accidental coupling)
        a = evaluate_mc_method(
            "snorkel-mc", topics_dataset, n_iterations=5, eval_every=5, n_seeds=1
        )
        b = evaluate_mc_method(
            "abstain-mc", topics_dataset, n_iterations=5, eval_every=5, n_seeds=1
        )
        assert a.method != b.method

    def test_n_seeds_validated(self, topics_dataset):
        with pytest.raises(ValueError, match="n_seeds"):
            evaluate_mc_method("snorkel-mc", topics_dataset, n_seeds=0)
