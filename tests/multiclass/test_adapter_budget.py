"""The duplication guard, run as part of the suite (and CI's lint job)."""

import importlib.util
import sys
from pathlib import Path

REPO_ROOT = Path(__file__).resolve().parent.parent.parent


def load_guard():
    spec = importlib.util.spec_from_file_location(
        "adapter_budget", REPO_ROOT / "tools" / "adapter_budget.py"
    )
    module = importlib.util.module_from_spec(spec)
    sys.modules.setdefault("adapter_budget", module)
    spec.loader.exec_module(module)
    return module


def test_adapter_modules_within_budget():
    guard = load_guard()
    assert guard.check() == []


def test_guard_tracks_real_files():
    guard = load_guard()
    for rel in guard.ADAPTER_MODULES:
        assert (REPO_ROOT / rel).is_file(), f"guarded module vanished: {rel}"
