"""Property-based invariants of the multiclass vote-matrix utilities."""

import numpy as np
from hypothesis import given, settings
from hypothesis import strategies as st
from hypothesis.extra.numpy import arrays

from repro.multiclass.matrix import (
    MC_ABSTAIN,
    mc_abstain_counts,
    mc_conflict_counts,
    mc_coverage_mask,
    mc_vote_counts,
)

K = 4
MC_MATRICES = arrays(
    np.int8,
    st.tuples(st.integers(1, 30), st.integers(0, 8)),
    elements=st.sampled_from(list(range(-1, K))),
)


def brute_force_conflicts(row: np.ndarray) -> int:
    votes = [v for v in row if v != MC_ABSTAIN]
    return sum(
        1
        for i in range(len(votes))
        for j in range(i + 1, len(votes))
        if votes[i] != votes[j]
    )


class TestCountingIdentities:
    @given(L=MC_MATRICES)
    @settings(max_examples=50, deadline=None)
    def test_votes_plus_abstains_equal_m(self, L):
        votes = mc_vote_counts(L, K).sum(axis=1)
        np.testing.assert_array_equal(votes + mc_abstain_counts(L), L.shape[1])

    @given(L=MC_MATRICES)
    @settings(max_examples=50, deadline=None)
    def test_conflict_formula_matches_brute_force(self, L):
        fast = mc_conflict_counts(L, K)
        slow = np.array([brute_force_conflicts(row) for row in L])
        np.testing.assert_array_equal(fast, slow)

    @given(L=MC_MATRICES)
    @settings(max_examples=50, deadline=None)
    def test_coverage_mask_consistent_with_vote_counts(self, L):
        covered = mc_coverage_mask(L)
        has_votes = mc_vote_counts(L, K).sum(axis=1) > 0
        np.testing.assert_array_equal(covered, has_votes)

    @given(L=MC_MATRICES)
    @settings(max_examples=50, deadline=None)
    def test_column_permutation_invariance(self, L):
        if L.shape[1] < 2:
            return
        rng = np.random.default_rng(0)
        perm = rng.permutation(L.shape[1])
        np.testing.assert_array_equal(
            mc_conflict_counts(L, K), mc_conflict_counts(L[:, perm], K)
        )
        np.testing.assert_array_equal(
            mc_vote_counts(L, K), mc_vote_counts(L[:, perm], K)
        )

    @given(L=MC_MATRICES)
    @settings(max_examples=50, deadline=None)
    def test_relabeling_classes_permutes_vote_columns(self, L):
        # Applying a class permutation to the votes permutes the count
        # columns identically (no hidden class asymmetry in the counting).
        rng = np.random.default_rng(1)
        perm = rng.permutation(K)
        relabeled = np.where(L == MC_ABSTAIN, MC_ABSTAIN, perm[np.clip(L, 0, None)])
        base = mc_vote_counts(L, K)
        moved = mc_vote_counts(relabeled.astype(np.int8), K)
        np.testing.assert_array_equal(moved[:, perm], base)
