"""Tests for the multiclass session engine and simulated users."""

import numpy as np
import pytest

from repro.multiclass import (
    MCContextualizer,
    MCPercentileTuner,
    MCRandomSelector,
    MCSEUSelector,
    MCSimulatedUser,
    MultiClassSession,
)
from repro.multiclass.majority import MCMajorityVote
from repro.multiclass.simulated_user import MCNoisyUser


class TestSimulatedUser:
    def test_lf_votes_true_class_of_dev_example(self, topics_dataset):
        user = MCSimulatedUser(topics_dataset, seed=0)
        session = MultiClassSession(topics_dataset, MCRandomSelector(), user, seed=0)
        state = session.build_state()
        for dev_index in range(8):
            lf = user.create_lf(dev_index, state)
            if lf is not None:
                assert lf.label == topics_dataset.train.y[dev_index]

    def test_threshold_filters_weak_primitives(self, topics_dataset):
        strict = MCSimulatedUser(topics_dataset, accuracy_threshold=0.95, seed=0)
        lax = MCSimulatedUser(topics_dataset, accuracy_threshold=0.0, seed=0)
        session = MultiClassSession(topics_dataset, MCRandomSelector(), lax, seed=0)
        state = session.build_state()
        n_strict = sum(
            strict.create_lf(i, state) is not None for i in range(30)
        )
        n_lax = sum(lax.create_lf(i, state) is not None for i in range(30))
        assert n_strict <= n_lax

    def test_created_lf_meets_threshold(self, topics_dataset):
        threshold = 0.7
        user = MCSimulatedUser(topics_dataset, accuracy_threshold=threshold, seed=0)
        session = MultiClassSession(topics_dataset, MCRandomSelector(), user, seed=0)
        state = session.build_state()
        B = topics_dataset.train.B
        y = topics_dataset.train.y
        for dev_index in range(20):
            lf = user.create_lf(dev_index, state)
            if lf is None:
                continue
            covered = np.asarray(B[:, lf.primitive_id].todense()).ravel() > 0
            acc = (y[covered] == lf.label).mean()
            assert acc >= threshold - 1e-9

    def test_no_duplicate_lfs(self, topics_dataset):
        user = MCSimulatedUser(topics_dataset, seed=0)
        session = MultiClassSession(topics_dataset, MCRandomSelector(), user, seed=0)
        session.run(12)
        keys = [(lf.primitive_id, lf.label) for lf in session.lfs]
        assert len(keys) == len(set(keys))

    def test_noisy_user_can_mislabel(self, topics_dataset):
        user = MCNoisyUser(topics_dataset, mislabel_rate=1.0, seed=0)
        assert user._determine_label(0) != topics_dataset.train.y[0]

    def test_noisy_user_validation(self, topics_dataset):
        with pytest.raises(ValueError, match="judgment_noise"):
            MCNoisyUser(topics_dataset, judgment_noise=-0.1)

    def test_user_validation(self, topics_dataset):
        with pytest.raises(ValueError, match="accuracy_threshold"):
            MCSimulatedUser(topics_dataset, accuracy_threshold=1.5)
        with pytest.raises(ValueError, match="min_coverage"):
            MCSimulatedUser(topics_dataset, min_coverage=0)


class TestSession:
    def test_runs_and_scores(self, topics_dataset):
        session = MultiClassSession(
            topics_dataset, MCRandomSelector(), MCSimulatedUser(topics_dataset, seed=0), seed=0
        )
        session.run(8)
        assert len(session.lfs) > 0
        assert 0.0 <= session.test_score() <= 1.0

    def test_lineage_tracks_dev_indices(self, topics_dataset):
        session = MultiClassSession(
            topics_dataset, MCRandomSelector(), MCSimulatedUser(topics_dataset, seed=0), seed=0
        )
        session.run(6)
        for record in session.lineage.records:
            assert record.dev_index in session.selected

    def test_label_matrix_grows_with_lfs(self, topics_dataset):
        session = MultiClassSession(
            topics_dataset, MCRandomSelector(), MCSimulatedUser(topics_dataset, seed=0), seed=0
        )
        session.run(6)
        assert session.L_train.shape == (topics_dataset.train.n, len(session.lfs))
        assert session.L_valid.shape == (topics_dataset.valid.n, len(session.lfs))

    def test_proba_rows_normalized(self, topics_dataset):
        session = MultiClassSession(
            topics_dataset, MCRandomSelector(), MCSimulatedUser(topics_dataset, seed=0), seed=0
        )
        session.run(6)
        np.testing.assert_allclose(session.soft_labels.sum(axis=1), 1.0, atol=1e-6)
        np.testing.assert_allclose(session.proxy_proba.sum(axis=1), 1.0, atol=1e-6)
        np.testing.assert_allclose(
            session.predict_proba_test().sum(axis=1), 1.0, atol=1e-6
        )

    def test_prior_prediction_before_any_lf(self, topics_dataset):
        session = MultiClassSession(
            topics_dataset, MCRandomSelector(), MCSimulatedUser(topics_dataset, seed=0), seed=0
        )
        majority = int(np.argmax(topics_dataset.class_priors))
        assert (session.predict_test() == majority).all()

    def test_contextualized_session_runs(self, topics_dataset):
        session = MultiClassSession(
            topics_dataset,
            MCSEUSelector(),
            MCSimulatedUser(topics_dataset, seed=0),
            contextualizer=MCContextualizer(n_classes=4),
            percentile_tuner=MCPercentileTuner(grid=(50.0, 90.0)),
            seed=0,
        )
        session.run(8)
        assert session.active_percentile_ in (50.0, 90.0)
        # selectors see the raw-vote posterior when refinement is active
        if session.selection_soft_labels is not None:
            np.testing.assert_allclose(
                session.selection_soft_labels.sum(axis=1), 1.0, atol=1e-6
            )

    def test_custom_label_model_factory(self, topics_dataset):
        session = MultiClassSession(
            topics_dataset,
            MCRandomSelector(),
            MCSimulatedUser(topics_dataset, seed=0),
            label_model_factory=lambda: MCMajorityVote(
                n_classes=4, class_priors=topics_dataset.class_priors
            ),
            seed=0,
        )
        session.run(5)
        assert isinstance(session.label_model_, MCMajorityVote)

    def test_tune_every_validated(self, topics_dataset):
        with pytest.raises(ValueError, match="tune_every"):
            MultiClassSession(
                topics_dataset,
                MCRandomSelector(),
                MCSimulatedUser(topics_dataset, seed=0),
                tune_every=0,
            )

    def test_deterministic_given_seed(self, topics_dataset):
        def run():
            session = MultiClassSession(
                topics_dataset,
                MCRandomSelector(),
                MCSimulatedUser(topics_dataset, seed=5),
                seed=5,
            )
            session.run(6)
            return [lf.name for lf in session.lfs]

        assert run() == run()


class TestEndToEndShape:
    @pytest.mark.slow
    def test_nemo_mc_beats_random_on_average(self):
        """The paper's headline shape, K-class edition (reduced scale)."""
        from repro.multiclass import make_topics_dataset

        def curve(selector_factory, ctx, seeds=(0, 1), iters=20):
            scores = []
            for s in seeds:
                ds = make_topics_dataset(n_docs=600, seed=0, vocab_scale=8)
                session = MultiClassSession(
                    ds,
                    selector_factory(),
                    MCSimulatedUser(ds, seed=s),
                    contextualizer=MCContextualizer(n_classes=4) if ctx else None,
                    percentile_tuner=MCPercentileTuner() if ctx else None,
                    seed=s,
                )
                pts = []
                for i in range(iters):
                    session.step()
                    if (i + 1) % 5 == 0:
                        pts.append(session.test_score())
                scores.append(np.mean(pts))
            return float(np.mean(scores))

        nemo = curve(MCSEUSelector, ctx=True)
        snorkel = curve(MCRandomSelector, ctx=False)
        assert nemo > snorkel - 0.02  # shape holds with slack for tiny scale
