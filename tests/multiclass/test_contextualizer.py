"""Tests for the multiclass LF contextualizer and percentile tuner."""

import numpy as np
import pytest

from repro.core.lineage import LineageStore
from repro.multiclass.contextualizer import MCContextualizer, MCPercentileTuner
from repro.multiclass.lf import MultiClassLFFamily
from repro.multiclass.majority import MCMajorityVote
from repro.multiclass.matrix import MC_ABSTAIN, apply_mc_lfs


@pytest.fixture()
def lineage_with_lfs(topics_dataset):
    family = MultiClassLFFamily(
        topics_dataset.primitive_names, topics_dataset.train.B, 4
    )
    lineage = LineageStore(topics_dataset)
    lfs = [family.make(0, 0), family.make(1, 2)]
    # development points: pick covered examples for each primitive
    for i, lf in enumerate(lfs):
        covered = np.flatnonzero(
            np.asarray(topics_dataset.train.B[:, lf.primitive_id].todense()).ravel()
        )
        lineage.add(lf, int(covered[0]), i)
    L_train = apply_mc_lfs(lfs, topics_dataset.train.B)
    L_valid = apply_mc_lfs(lfs, topics_dataset.valid.B)
    return lineage, L_train, L_valid


class TestRefinement:
    def test_refined_votes_subset_of_raw(self, lineage_with_lfs):
        lineage, L_train, _ = lineage_with_lfs
        ctx = MCContextualizer(n_classes=4, percentile=50.0)
        refined = ctx.refine(L_train, lineage)
        changed = refined != L_train
        assert (refined[changed] == MC_ABSTAIN).all()

    def test_percentile_100_keeps_everything(self, lineage_with_lfs):
        lineage, L_train, _ = lineage_with_lfs
        ctx = MCContextualizer(n_classes=4, percentile=100.0)
        np.testing.assert_array_equal(ctx.refine(L_train, lineage), L_train)

    def test_smaller_percentile_refines_more(self, lineage_with_lfs):
        lineage, L_train, _ = lineage_with_lfs
        ctx = MCContextualizer(n_classes=4)
        votes_25 = (ctx.refine(L_train, lineage, percentile=25.0) != MC_ABSTAIN).sum()
        votes_75 = (ctx.refine(L_train, lineage, percentile=75.0) != MC_ABSTAIN).sum()
        assert votes_25 <= votes_75

    def test_monotone_coverage_subset(self, lineage_with_lfs):
        lineage, L_train, _ = lineage_with_lfs
        ctx = MCContextualizer(n_classes=4)
        small = ctx.refine(L_train, lineage, percentile=25.0)
        large = ctx.refine(L_train, lineage, percentile=75.0)
        fired_small = small != MC_ABSTAIN
        fired_large = large != MC_ABSTAIN
        assert np.all(~fired_small | fired_large)

    def test_dev_point_always_kept(self, lineage_with_lfs):
        lineage, L_train, _ = lineage_with_lfs
        ctx = MCContextualizer(n_classes=4, percentile=5.0)
        refined = ctx.refine(L_train, lineage)
        for j, record in enumerate(lineage.records):
            assert refined[record.dev_index, j] == L_train[record.dev_index, j]

    def test_zero_lfs_passthrough(self, topics_dataset):
        lineage = LineageStore(topics_dataset)
        ctx = MCContextualizer(n_classes=4)
        L = np.full((topics_dataset.train.n, 0), MC_ABSTAIN, dtype=np.int8)
        assert ctx.refine(L, lineage).shape == L.shape

    def test_column_mismatch_raises(self, lineage_with_lfs):
        lineage, L_train, _ = lineage_with_lfs
        ctx = MCContextualizer(n_classes=4)
        with pytest.raises(ValueError, match="lineage"):
            ctx.refine(L_train[:, :1], lineage)

    def test_split_radii_from_train(self, lineage_with_lfs):
        lineage, _, L_valid = lineage_with_lfs
        ctx = MCContextualizer(n_classes=4, percentile=50.0)
        refined_valid = ctx.refine(L_valid, lineage, split="valid")
        assert refined_valid.shape == L_valid.shape

    def test_validation(self):
        with pytest.raises(ValueError, match="n_classes"):
            MCContextualizer(n_classes=1)
        with pytest.raises(ValueError, match="metric"):
            MCContextualizer(n_classes=3, metric="manhattan")
        with pytest.raises(ValueError, match="percentile"):
            MCContextualizer(n_classes=3, percentile=150.0)


class TestTuner:
    def test_returns_grid_member(self, topics_dataset, lineage_with_lfs):
        lineage, L_train, L_valid = lineage_with_lfs
        tuner = MCPercentileTuner(grid=(50.0, 90.0))
        best = tuner.best_percentile(
            MCContextualizer(n_classes=4),
            L_train,
            L_valid,
            lineage,
            lambda: MCMajorityVote(n_classes=4),
            topics_dataset.valid.y,
        )
        assert best in (50.0, 90.0)

    def test_empty_grid_rejected(self):
        with pytest.raises(ValueError, match="grid"):
            MCPercentileTuner(grid=())
