"""Tests for the multiclass label models (majority vote + Dawid-Skene EM)."""

import numpy as np
import pytest
from hypothesis import given, settings
from hypothesis import strategies as st
from hypothesis.extra.numpy import arrays

from repro.multiclass.base import posterior_entropy_mc
from repro.multiclass.dawid_skene import MCDawidSkeneModel
from repro.multiclass.majority import MCMajorityVote

from tests.multiclass.conftest import planted_mc

MC_MATRICES = arrays(
    np.int8,
    st.tuples(st.integers(2, 25), st.integers(1, 5)),
    elements=st.sampled_from([-1, 0, 1, 2]),
)

MODELS = {
    "majority": lambda: MCMajorityVote(n_classes=3),
    "dawid-skene": lambda: MCDawidSkeneModel(n_classes=3, n_iter=15),
}


class TestMajorityVote:
    def test_plurality_wins(self):
        L = np.array([[0, 0, 1], [2, 2, 2]], dtype=np.int8)
        preds = MCMajorityVote(n_classes=3).fit(L).predict(L)
        np.testing.assert_array_equal(preds, [0, 2])

    def test_uncovered_gets_priors(self):
        priors = np.array([0.5, 0.3, 0.2])
        L = np.full((2, 2), -1, dtype=np.int8)
        proba = MCMajorityVote(n_classes=3, class_priors=priors).fit_predict_proba(L)
        np.testing.assert_allclose(proba, np.tile(priors, (2, 1)))

    def test_zero_lf_matrix(self):
        L = np.zeros((3, 0), dtype=np.int8)
        proba = MCMajorityVote(n_classes=4).fit_predict_proba(L)
        np.testing.assert_allclose(proba, 0.25)

    def test_smoothing_keeps_posteriors_interior(self):
        L = np.array([[1]], dtype=np.int8)
        proba = MCMajorityVote(n_classes=3, smoothing=1.0).fit_predict_proba(L)
        assert 0 < proba[0, 0] < proba[0, 1] < 1

    def test_no_smoothing_gives_hard_vote_share(self):
        L = np.array([[1, 1]], dtype=np.int8)
        proba = MCMajorityVote(n_classes=3, smoothing=0.0).fit_predict_proba(L)
        np.testing.assert_allclose(proba[0], [0, 1, 0])

    def test_negative_smoothing_rejected(self):
        with pytest.raises(ValueError, match="smoothing"):
            MCMajorityVote(n_classes=3, smoothing=-1.0)

    def test_bad_priors_rejected(self):
        with pytest.raises(ValueError, match="class_priors"):
            MCMajorityVote(n_classes=3, class_priors=np.array([0.5, 0.5]))
        with pytest.raises(ValueError, match="positive"):
            MCMajorityVote(n_classes=2, class_priors=np.array([1.0, 0.0]))


class TestDawidSkene:
    def test_posterior_better_than_chance(self):
        L, y, _ = planted_mc(n=1500, m=6, n_classes=3)
        model = MCDawidSkeneModel(n_classes=3)
        preds = model.fit(L).predict(L)
        covered = (L != -1).any(axis=1)
        assert (preds[covered] == y[covered]).mean() > 0.75

    def test_beats_majority_under_skewed_accuracies(self):
        # One excellent LF and several mediocre ones: weighting should win.
        rng = np.random.default_rng(3)
        n, K = 2000, 3
        y = rng.integers(K, size=n)
        accs = [0.95, 0.55, 0.55, 0.55]
        L = np.full((n, len(accs)), -1, dtype=np.int8)
        for j, a in enumerate(accs):
            fires = rng.random(n) < 0.8
            correct = rng.random(n) < a
            wrong = (y[fires] + rng.integers(1, K, size=fires.sum())) % K
            L[fires, j] = np.where(correct[fires], y[fires], wrong)
        ds_preds = MCDawidSkeneModel(n_classes=K).fit(L).predict(L)
        mv_preds = MCMajorityVote(n_classes=K).fit(L).predict(L)
        assert (ds_preds == y).mean() > (mv_preds == y).mean()

    def test_confusion_rows_are_distributions(self):
        L, _, _ = planted_mc()
        model = MCDawidSkeneModel(n_classes=3).fit(L)
        np.testing.assert_allclose(model.confusions_.sum(axis=2), 1.0, atol=1e-6)

    def test_recovered_accuracy_ordering(self):
        L, y, accs = planted_mc(n=3000, m=4, n_classes=3, acc_range=(0.55, 0.95), seed=5)
        model = MCDawidSkeneModel(n_classes=3).fit(L)
        fitted_diag = np.array([model.confusions_[j].diagonal().mean() for j in range(4)])
        assert np.argmax(fitted_diag) == np.argmax(accs)

    def test_empty_matrix(self):
        model = MCDawidSkeneModel(n_classes=3).fit(np.zeros((4, 0), dtype=np.int8))
        proba = model.predict_proba(np.zeros((4, 0), dtype=np.int8))
        np.testing.assert_allclose(proba, np.tile(model.priors_, (4, 1)))

    def test_priors_learned_from_skew(self):
        rng = np.random.default_rng(1)
        n, K = 2000, 3
        y = np.where(rng.random(n) < 0.7, 0, rng.integers(1, K, size=n))
        L = np.full((n, 4), -1, dtype=np.int8)
        for j in range(4):
            fires = rng.random(n) < 0.7
            correct = rng.random(n) < 0.9
            wrong = (y[fires] + rng.integers(1, K, size=fires.sum())) % K
            L[fires, j] = np.where(correct[fires], y[fires], wrong)
        model = MCDawidSkeneModel(n_classes=K, learn_priors=True).fit(L)
        assert model.priors_[0] > 0.55

    def test_fixed_priors_respected(self):
        L, _, _ = planted_mc(n=300)
        priors = np.array([0.2, 0.3, 0.5])
        model = MCDawidSkeneModel(n_classes=3, class_priors=priors, learn_priors=False)
        model.fit(L)
        np.testing.assert_allclose(model.priors_, priors)

    def test_uncovered_examples_get_priors_without_abstain_evidence(self):
        L, _, _ = planted_mc(n=400, fire_rate=0.3)
        model = MCDawidSkeneModel(n_classes=3).fit(L)
        proba = model.predict_proba(L)
        uncovered = ~(L != -1).any(axis=1)
        assert uncovered.any()
        np.testing.assert_allclose(
            proba[uncovered], np.tile(model.priors_, (uncovered.sum(), 1)), atol=1e-9
        )

    def test_abstain_evidence_changes_uncovered_posterior(self):
        L, _, _ = planted_mc(n=400, fire_rate=0.3, seed=2)
        with_ev = MCDawidSkeneModel(n_classes=3, abstain_evidence=True).fit(L)
        proba = with_ev.predict_proba(L)
        uncovered = ~(L != -1).any(axis=1)
        assert not np.allclose(proba[uncovered], with_ev.priors_, atol=1e-6)

    def test_predict_before_fit_raises(self):
        with pytest.raises(RuntimeError):
            MCDawidSkeneModel(n_classes=3).predict_proba(np.zeros((2, 1), dtype=np.int8))

    def test_column_mismatch_raises(self):
        L, _, _ = planted_mc(n=100, m=3)
        model = MCDawidSkeneModel(n_classes=3).fit(L)
        with pytest.raises(ValueError, match="fitted with"):
            model.predict_proba(L[:, :2])

    def test_init_accuracy_below_chance_rejected(self):
        with pytest.raises(ValueError, match="init_accuracy"):
            MCDawidSkeneModel(n_classes=4, init_accuracy=0.2)

    def test_marginal_ll_improves_over_init(self):
        L, _, _ = planted_mc(n=500, m=4)
        one_step = MCDawidSkeneModel(n_classes=3, n_iter=1).fit(L)
        converged = MCDawidSkeneModel(n_classes=3, n_iter=50).fit(L)
        assert converged.marginal_ll(L) >= one_step.marginal_ll(L) - 1e-6


@pytest.mark.parametrize("name", sorted(MODELS))
class TestUniversalInvariants:
    @given(L=MC_MATRICES)
    @settings(max_examples=20, deadline=None)
    def test_rows_are_distributions(self, name, L):
        proba = MODELS[name]().fit_predict_proba(L)
        assert proba.shape == (L.shape[0], 3)
        assert np.all(proba >= -1e-9)
        np.testing.assert_allclose(proba.sum(axis=1), 1.0, atol=1e-6)

    @given(L=MC_MATRICES)
    @settings(max_examples=20, deadline=None)
    def test_identical_rows_get_identical_posteriors(self, name, L):
        L = np.vstack([L, L[:1]])
        proba = MODELS[name]().fit_predict_proba(L)
        np.testing.assert_allclose(proba[0], proba[-1], atol=1e-9)

    @given(L=MC_MATRICES)
    @settings(max_examples=20, deadline=None)
    def test_entropy_bounded_by_log_k(self, name, L):
        proba = MODELS[name]().fit_predict_proba(L)
        ent = posterior_entropy_mc(proba)
        assert np.all(ent >= -1e-9)
        assert np.all(ent <= np.log(3) + 1e-9)
