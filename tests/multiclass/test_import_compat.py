"""Import-path compatibility for the multiclass adapter modules.

The mirror removal left ``repro.multiclass.*`` as thin adapters/re-exports
over the cardinality-generic ``core``/``interactive`` implementations.
These tests pin the contract: every public class keeps its historical
import path AND stays instantiable with its historical constructor
signature.
"""

import numpy as np
import pytest

from repro.multiclass import MultiClassLFFamily, posterior_entropy_mc


class TestOldPathsImportable:
    def test_module_level_paths(self):
        # One canonical symbol per former mirror module.
        from repro.multiclass.contextualizer import MCContextualizer  # noqa: F401
        from repro.multiclass.selection import MCSessionState  # noqa: F401
        from repro.multiclass.seu import MCSEUSelector  # noqa: F401
        from repro.multiclass.simulated_user import MCSimulatedUser  # noqa: F401
        from repro.multiclass.user_model import MCUserModel  # noqa: F401
        from repro.multiclass.utility import MCLFUtility, signed_agreement  # noqa: F401

    def test_package_reexports(self):
        import repro.multiclass as mc

        for name in mc.__all__:
            assert getattr(mc, name, None) is not None, f"missing export {name}"


class TestOldConstructorsWork:
    def test_contextualizer(self):
        from repro.multiclass.contextualizer import MCContextualizer, MCPercentileTuner

        ctx = MCContextualizer(n_classes=4, metric="euclidean", percentile=60.0)
        assert ctx.n_classes == 4
        assert ctx.percentile == 60.0
        tuner = MCPercentileTuner(grid=(40.0, 80.0))
        assert tuner.grid == (40.0, 80.0)
        with pytest.raises(ValueError, match="n_classes"):
            MCContextualizer(n_classes=1)

    def test_user_models(self):
        from repro.multiclass.user_model import (
            MCAccuracyWeightedUserModel,
            MCThresholdedUserModel,
            MCUniformUserModel,
            make_mc_user_model,
        )

        acc = np.array([[0.7, 0.2, 0.1], [0.3, 0.3, 0.4]])
        for cls in (MCAccuracyWeightedUserModel, MCUniformUserModel):
            assert cls().pick_weights(acc).shape == acc.shape
        thresholded = MCThresholdedUserModel(threshold=0.25)
        assert thresholded.threshold == 0.25
        assert isinstance(make_mc_user_model("accuracy"), MCAccuracyWeightedUserModel)

    def test_utilities(self):
        from repro.multiclass.utility import (
            MCFullUtility,
            MCNoCorrectnessUtility,
            MCNoInformativenessUtility,
            make_mc_utility,
        )

        for cls in (MCFullUtility, MCNoCorrectnessUtility, MCNoInformativenessUtility):
            assert cls().name
        assert isinstance(make_mc_utility("full"), MCFullUtility)
        with pytest.raises(ValueError, match="unknown utility"):
            make_mc_utility("nope")

    def test_selectors_and_state(self, topics_dataset):
        from repro.multiclass.selection import (
            MCAbstainSelector,
            MCDevDataSelector,
            MCDisagreeSelector,
            MCRandomSelector,
            MCSessionState,
            MCUncertaintySelector,
        )

        ds = topics_dataset
        soft = np.tile(ds.class_priors, (ds.train.n, 1))
        state = MCSessionState(
            dataset=ds,
            family=MultiClassLFFamily(ds.primitive_names, ds.train.B, ds.n_classes),
            iteration=0,
            lfs=[],
            L_train=np.full((ds.train.n, 0), -1, dtype=np.int8),
            soft_labels=soft,
            entropies=posterior_entropy_mc(soft),
            proxy_proba=soft.copy(),
            selected=set(),
            rng=np.random.default_rng(0),
        )
        assert state.n_classes == ds.n_classes
        assert state.convention.abstain == -1
        for cls in (MCRandomSelector, MCAbstainSelector, MCDisagreeSelector, MCUncertaintySelector):
            selector = cls()
            assert isinstance(selector, MCDevDataSelector)
            idx = selector.select(state)
            assert idx is not None and state.candidate_mask()[idx]

    def test_seu_selector(self):
        from repro.multiclass.seu import MCSEUSelector

        selector = MCSEUSelector(
            user_model="uniform", utility="no-correctness", warmup=2, min_classes=3
        )
        assert selector.warmup == 2
        assert selector.min_classes == 3

    def test_simulated_users(self, topics_dataset):
        from repro.multiclass.session import MCLFDeveloper
        from repro.multiclass.simulated_user import MCNoisyUser, MCSimulatedUser

        user = MCSimulatedUser(
            topics_dataset, accuracy_threshold=0.4, use_lexicon=False, min_coverage=3, seed=0
        )
        assert isinstance(user, MCLFDeveloper)
        assert user.convention.n_classes == topics_dataset.n_classes
        noisy = MCNoisyUser(
            topics_dataset,
            accuracy_threshold=0.4,
            mislabel_rate=0.1,
            judgment_noise=0.05,
            lexicon_adherence=0.9,
            min_coverage=2,
            seed=1,
        )
        assert isinstance(noisy, MCSimulatedUser)

    def test_session_builds_with_defaults(self, topics_dataset):
        from repro.multiclass.dawid_skene import MCDawidSkeneModel
        from repro.multiclass.selection import MCRandomSelector
        from repro.multiclass.session import MultiClassSession
        from repro.multiclass.simulated_user import MCSimulatedUser

        session = MultiClassSession(
            topics_dataset, MCRandomSelector(), MCSimulatedUser(topics_dataset, seed=0), seed=0
        )
        assert session.abstain_value == -1
        assert session.convention.n_classes == topics_dataset.n_classes
        assert isinstance(session.label_model_factory(), MCDawidSkeneModel)
