"""Tests for multiclass label-matrix utilities."""

import numpy as np
import pytest
from hypothesis import given, settings
from hypothesis import strategies as st
from hypothesis.extra.numpy import arrays

from repro.multiclass.matrix import (
    MC_ABSTAIN,
    apply_mc_lfs,
    mc_abstain_counts,
    mc_conflict_counts,
    mc_coverage,
    mc_coverage_mask,
    mc_lf_accuracies,
    mc_summary,
    mc_vote_counts,
    validate_mc_label_matrix,
    validate_mc_labels,
)

MC_MATRICES = arrays(
    np.int8,
    st.tuples(st.integers(1, 20), st.integers(0, 6)),
    elements=st.sampled_from([-1, 0, 1, 2]),
)


class TestValidation:
    def test_valid_matrix_passes(self):
        L = np.array([[0, 1, -1], [2, -1, -1]])
        out = validate_mc_label_matrix(L, 3)
        assert out.dtype == np.int8

    def test_vote_beyond_k_rejected(self):
        with pytest.raises(ValueError, match="entries must be in"):
            validate_mc_label_matrix(np.array([[3]]), 3)

    def test_below_abstain_rejected(self):
        with pytest.raises(ValueError, match="entries must be in"):
            validate_mc_label_matrix(np.array([[-2]]), 3)

    def test_one_dim_rejected(self):
        with pytest.raises(ValueError, match="2-D"):
            validate_mc_label_matrix(np.array([0, 1]), 3)

    def test_n_classes_below_two_rejected(self):
        with pytest.raises(ValueError, match="n_classes"):
            validate_mc_label_matrix(np.zeros((1, 1)), 1)

    def test_labels_vector_valid(self):
        out = validate_mc_labels("y", np.array([0, 1, 2]), 3)
        assert out.dtype == int

    def test_labels_vector_abstain_rejected(self):
        with pytest.raises(ValueError, match="classes in"):
            validate_mc_labels("y", np.array([0, -1]), 3)


class TestCoverage:
    def test_coverage_mask(self):
        L = np.array([[-1, -1], [0, -1], [-1, 2]])
        np.testing.assert_array_equal(mc_coverage_mask(L), [False, True, True])

    def test_coverage_fraction(self):
        L = np.array([[-1, -1], [0, -1], [-1, 2], [1, 1]])
        assert mc_coverage(L) == pytest.approx(0.75)

    def test_empty_matrix_coverage_zero(self):
        assert mc_coverage(np.zeros((0, 3))) == 0.0
        assert mc_coverage(np.full((3, 0), MC_ABSTAIN)) == 0.0


class TestVoteCounts:
    def test_counts_by_class(self):
        L = np.array([[0, 0, 1], [2, -1, 2]])
        counts = mc_vote_counts(L, 3)
        np.testing.assert_array_equal(counts, [[2, 1, 0], [0, 0, 2]])

    def test_abstain_counts(self):
        L = np.array([[0, -1, -1], [-1, -1, -1]])
        np.testing.assert_array_equal(mc_abstain_counts(L), [2, 3])


class TestConflicts:
    def test_no_conflict_when_agreeing(self):
        L = np.array([[1, 1, 1]])
        assert mc_conflict_counts(L, 3)[0] == 0

    def test_pairwise_conflict_count(self):
        # votes (0, 0, 1, 2): pairs across classes = 2*1 + 2*1 + 1*1 = 5
        L = np.array([[0, 0, 1, 2]])
        assert mc_conflict_counts(L, 3)[0] == 5

    def test_binary_reduction_matches_product(self):
        # For K=2 the formula reduces to pos * neg
        L = np.array([[0, 0, 1, 1, 1]])
        assert mc_conflict_counts(L, 2)[0] == 2 * 3

    @given(L=MC_MATRICES)
    @settings(max_examples=30, deadline=None)
    def test_conflicts_nonnegative(self, L):
        assert np.all(mc_conflict_counts(L, 3) >= 0)


class TestAccuracies:
    def test_perfect_lf(self):
        y = np.array([0, 1, 2])
        L = y[:, None].astype(np.int8)
        assert mc_lf_accuracies(L, y)[0] == pytest.approx(1.0)

    def test_uncovered_lf_is_nan(self):
        L = np.full((3, 1), MC_ABSTAIN, dtype=np.int8)
        assert np.isnan(mc_lf_accuracies(L, np.array([0, 1, 2]))[0])

    def test_partial_accuracy(self):
        y = np.array([0, 0, 1, 1])
        L = np.array([[0], [1], [1], [-1]], dtype=np.int8)
        assert mc_lf_accuracies(L, y)[0] == pytest.approx(2.0 / 3.0)


class TestApplyLFs:
    def test_apply_matches_incidence(self, topics_dataset):
        from repro.multiclass.lf import MultiClassLFFamily

        family = MultiClassLFFamily(
            topics_dataset.primitive_names, topics_dataset.train.B, 4
        )
        lfs = [family.make(0, 1), family.make(1, 3)]
        L = apply_mc_lfs(lfs, topics_dataset.train.B)
        col0 = np.asarray(topics_dataset.train.B[:, 0].todense()).ravel()
        np.testing.assert_array_equal(L[:, 0], np.where(col0 > 0, 1, MC_ABSTAIN))
        assert set(np.unique(L[:, 1])) <= {MC_ABSTAIN, 3}

    def test_empty_lf_list(self):
        import scipy.sparse as sp

        L = apply_mc_lfs([], sp.csr_matrix((5, 3)))
        assert L.shape == (5, 0)


class TestSummary:
    def test_summary_keys(self):
        L = np.array([[0, 1], [-1, -1]], dtype=np.int8)
        stats = mc_summary(L, 2, y=np.array([0, 1]))
        for key in ("n_examples", "n_lfs", "coverage", "overlap", "conflict"):
            assert key in stats
        assert "mean_lf_accuracy" in stats

    @given(L=MC_MATRICES)
    @settings(max_examples=30, deadline=None)
    def test_summary_fractions_in_unit_interval(self, L):
        stats = mc_summary(L, 3)
        for key in ("coverage", "overlap", "conflict"):
            assert 0.0 <= stats[key] <= 1.0
