"""Shared fixtures for multiclass tests: a small 4-topic dataset and state."""

import numpy as np
import pytest

from repro.multiclass import (
    MCSessionState,
    MultiClassLFFamily,
    make_topics_dataset,
    posterior_entropy_mc,
)


@pytest.fixture(scope="session")
def topics_dataset():
    return make_topics_dataset(n_docs=500, seed=0, vocab_scale=6)


@pytest.fixture()
def empty_mc_state(topics_dataset):
    """A no-LF multiclass session state over the topics dataset."""
    ds = topics_dataset
    n = ds.train.n
    soft = np.tile(ds.class_priors, (n, 1))
    return MCSessionState(
        dataset=ds,
        family=MultiClassLFFamily(ds.primitive_names, ds.train.B, ds.n_classes),
        iteration=0,
        lfs=[],
        L_train=np.full((n, 0), -1, dtype=np.int8),
        soft_labels=soft,
        entropies=posterior_entropy_mc(soft),
        proxy_proba=soft.copy(),
        selected=set(),
        rng=np.random.default_rng(1),
    )


def planted_mc(n=1500, m=6, n_classes=3, fire_rate=0.6, acc_range=(0.65, 0.9), seed=0):
    """A vote matrix from planted per-LF accuracies; errors uniform off-class."""
    rng = np.random.default_rng(seed)
    y = rng.integers(n_classes, size=n)
    accs = rng.uniform(*acc_range, size=m)
    L = np.full((n, m), -1, dtype=np.int8)
    for j in range(m):
        fires = rng.random(n) < fire_rate
        correct = rng.random(n) < accs[j]
        wrong = (y[fires] + rng.integers(1, n_classes, size=fires.sum())) % n_classes
        L[fires, j] = np.where(correct[fires], y[fires], wrong)
    return L, y, accs
