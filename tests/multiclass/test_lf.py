"""Tests for multiclass primitive LFs and the LF family."""

import numpy as np
import pytest
import scipy.sparse as sp

from repro.multiclass.lf import MultiClassLF, MultiClassLFFamily
from repro.multiclass.matrix import MC_ABSTAIN


def small_family(n_classes=3):
    B = sp.csr_matrix(
        np.array(
            [
                [1, 0, 1],
                [0, 1, 0],
                [1, 1, 0],
                [0, 0, 0],
            ]
        )
    )
    return MultiClassLFFamily(["alpha", "beta", "gamma"], B, n_classes)


class TestMultiClassLF:
    def test_apply_votes_class_on_covered(self):
        family = small_family()
        lf = family.make(0, 2)
        votes = lf.apply(family.B)
        np.testing.assert_array_equal(votes, [2, MC_ABSTAIN, 2, MC_ABSTAIN])

    def test_name(self):
        lf = MultiClassLF(primitive_id=0, primitive="goal", label=1)
        assert lf.name == "goal->1"

    def test_negative_label_rejected(self):
        with pytest.raises(ValueError, match="label"):
            MultiClassLF(primitive_id=0, primitive="x", label=-1)

    def test_negative_primitive_id_rejected(self):
        with pytest.raises(ValueError, match="primitive_id"):
            MultiClassLF(primitive_id=-1, primitive="x", label=0)

    def test_frozen(self):
        lf = MultiClassLF(primitive_id=0, primitive="x", label=0)
        with pytest.raises(AttributeError):
            lf.label = 1


class TestFamily:
    def test_make_validates_class(self):
        family = small_family(n_classes=3)
        with pytest.raises(ValueError, match="label"):
            family.make(0, 3)

    def test_make_by_token(self):
        family = small_family()
        lf = family.make_by_token("beta", 1)
        assert lf.primitive_id == 1

    def test_make_by_unknown_token_raises(self):
        family = small_family()
        with pytest.raises(KeyError):
            family.make_by_token("delta", 0)

    def test_primitives_in(self):
        family = small_family()
        np.testing.assert_array_equal(family.primitives_in(2), [0, 1])
        assert family.primitives_in(3).size == 0

    def test_coverage_counts(self):
        family = small_family()
        np.testing.assert_array_equal(family.coverage_counts(), [2, 2, 1])

    def test_shape_mismatch_rejected(self):
        with pytest.raises(ValueError, match="columns"):
            MultiClassLFFamily(["a"], sp.csr_matrix((2, 2)), 3)

    def test_n_classes_validated(self):
        with pytest.raises(ValueError, match="n_classes"):
            MultiClassLFFamily(["a"], sp.csr_matrix((2, 1)), 1)

    def test_explore_examples_only_covered(self):
        family = small_family()
        found = family.explore_examples(0, k=5, rng=np.random.default_rng(0))
        assert set(found) <= {0, 2}


class TestEmpiricalClassMass:
    def test_one_hot_proxy_recovers_fractions(self):
        family = small_family(n_classes=3)
        y = np.array([0, 1, 0, 2])
        onehot = np.zeros((4, 3))
        onehot[np.arange(4), y] = 1.0
        acc = family.empirical_class_mass(onehot)
        # primitive "alpha" covers rows 0 and 2, both class 0
        np.testing.assert_allclose(acc[0], [1.0, 0.0, 0.0])
        # primitive "beta" covers rows 1 (class 1) and 2 (class 0)
        np.testing.assert_allclose(acc[1], [0.5, 0.5, 0.0])

    def test_rows_sum_to_one_for_covered(self):
        family = small_family()
        rng = np.random.default_rng(0)
        P = rng.dirichlet(np.ones(3), size=4)
        acc = family.empirical_class_mass(P)
        np.testing.assert_allclose(acc.sum(axis=1), 1.0, atol=1e-9)

    def test_uncovered_primitive_gets_uniform(self):
        B = sp.csr_matrix(np.array([[1, 0], [1, 0]]))
        family = MultiClassLFFamily(["a", "b"], B, 4)
        P = np.full((2, 4), 0.25)
        acc = family.empirical_class_mass(P)
        np.testing.assert_allclose(acc[1], 0.25)

    def test_shape_mismatch_rejected(self):
        family = small_family()
        with pytest.raises(ValueError, match="shape"):
            family.empirical_class_mass(np.zeros((4, 2)))
