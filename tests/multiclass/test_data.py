"""Tests for the multiclass corpus generator and featurization."""

import numpy as np
import pytest

from repro.multiclass.data import (
    MCClusterSpec,
    MCCorpusGenerator,
    MCCorpusSpec,
    featurize_mc_corpus,
    make_topics_dataset,
    make_topics_spec,
)


def tiny_spec(n_classes=3):
    clusters = (
        MCClusterSpec(
            name="c0",
            marker_words=("m0a", "m0b"),
            local_cues=(("l00",), ("l01",), ("l02",))[:n_classes],
        ),
        MCClusterSpec(
            name="c1",
            marker_words=("m1a", "m1b"),
            local_cues=(("l10",), ("l11",), ("l12",))[:n_classes],
            weight=2.0,
        ),
    )
    return MCCorpusSpec(
        name="tiny",
        n_classes=n_classes,
        clusters=clusters,
        global_cues=(("g0",), ("g1",), ("g2",))[:n_classes],
        common_words=("the", "and", "of"),
        mean_doc_length=10.0,
    )


class TestSpecValidation:
    def test_valid_spec(self):
        tiny_spec()

    def test_wrong_global_bank_count(self):
        with pytest.raises(ValueError, match="global_cues"):
            MCCorpusSpec(
                name="bad",
                n_classes=3,
                clusters=tiny_spec().clusters,
                global_cues=(("g0",), ("g1",)),
                common_words=("the",),
            )

    def test_wrong_local_bank_count(self):
        bad_cluster = MCClusterSpec(
            name="bad", marker_words=("m",), local_cues=(("a",), ("b",))
        )
        with pytest.raises(ValueError, match="local_cues"):
            MCCorpusSpec(
                name="bad",
                n_classes=3,
                clusters=(bad_cluster,),
                global_cues=(("g0",), ("g1",), ("g2",)),
                common_words=("the",),
            )

    def test_mixture_weights_must_sum(self):
        with pytest.raises(ValueError, match="sum to 1"):
            MCCorpusSpec(
                name="bad",
                n_classes=2,
                clusters=tiny_spec(2).clusters,
                global_cues=(("g0",), ("g1",)),
                common_words=("the",),
                p_common=0.9,
            )

    def test_priors_validated(self):
        with pytest.raises(ValueError, match="class_priors"):
            MCCorpusSpec(
                name="bad",
                n_classes=3,
                clusters=tiny_spec().clusters,
                global_cues=(("g0",), ("g1",), ("g2",)),
                common_words=("the",),
                class_priors=(0.5, 0.5),
            )

    def test_priors_array_normalizes(self):
        spec = MCCorpusSpec(
            name="ok",
            n_classes=2,
            clusters=tiny_spec(2).clusters,
            global_cues=(("g0",), ("g1",)),
            common_words=("the",),
            class_priors=(2.0, 2.0),
        )
        np.testing.assert_allclose(spec.priors_array(), [0.5, 0.5])


class TestGenerator:
    def test_deterministic_for_seed(self):
        gen = MCCorpusGenerator(tiny_spec())
        a = gen.generate(50, seed=3)
        b = gen.generate(50, seed=3)
        assert a.texts == b.texts
        np.testing.assert_array_equal(a.labels, b.labels)

    def test_labels_in_range(self):
        corpus = MCCorpusGenerator(tiny_spec()).generate(200, seed=0)
        assert set(np.unique(corpus.labels)) <= {0, 1, 2}

    def test_cluster_weights_respected(self):
        corpus = MCCorpusGenerator(tiny_spec()).generate(3000, seed=0)
        counts = np.bincount(corpus.clusters, minlength=2)
        assert counts[1] > counts[0]  # c1 has double weight

    def test_global_cues_indicative(self):
        corpus = MCCorpusGenerator(tiny_spec()).generate(3000, seed=1)
        has_g0 = np.array(["g0" in t.split() for t in corpus.texts])
        # documents containing the class-0 global cue skew to class 0
        assert (corpus.labels[has_g0] == 0).mean() > (corpus.labels == 0).mean()

    def test_lexicon_maps_cues_to_classes(self):
        corpus = MCCorpusGenerator(tiny_spec()).generate(10, seed=0)
        assert corpus.lexicon["g1"] == 1
        assert corpus.lexicon["l02"] == 2

    def test_local_cue_reliability_decays_off_cluster(self):
        spec = tiny_spec()
        corpus = MCCorpusGenerator(spec).generate(6000, seed=2)
        has_l00 = np.array(["l00" in t.split() for t in corpus.texts])
        home = corpus.clusters == 0
        in_home = has_l00 & home
        off_home = has_l00 & ~home
        if in_home.sum() >= 30 and off_home.sum() >= 30:
            acc_home = (corpus.labels[in_home] == 0).mean()
            acc_off = (corpus.labels[off_home] == 0).mean()
            assert acc_home > acc_off


class TestFeaturization:
    def test_dataset_shapes(self, topics_dataset):
        ds = topics_dataset
        assert ds.n_classes == 4
        for split in ds.splits.values():
            assert split.X.shape[0] == split.n
            assert split.B.shape == split.X.shape
            assert split.y.shape == (split.n,)
        assert ds.train.X.shape[1] == ds.n_primitives

    def test_priors_positive_and_normalized(self, topics_dataset):
        priors = topics_dataset.class_priors
        assert priors.shape == (4,)
        assert np.all(priors > 0)
        assert priors.sum() == pytest.approx(1.0)

    def test_primitive_id_lookup(self, topics_dataset):
        token = topics_dataset.primitive_names[5]
        assert topics_dataset.primitive_id(token) == 5
        with pytest.raises(KeyError):
            topics_dataset.primitive_id("definitely-not-a-token")

    def test_describe_mentions_k(self, topics_dataset):
        assert "K=4" in topics_dataset.describe()

    def test_metric_validated(self):
        corpus = MCCorpusGenerator(tiny_spec()).generate(60, seed=0)
        with pytest.raises(ValueError, match="metric"):
            featurize_mc_corpus(corpus, metric="auc")


class TestTopicsRecipe:
    def test_spec_banks_unique_across_categories(self):
        spec = make_topics_spec(vocab_scale=5, seed=0)
        seen: set[str] = set()
        for bank in spec.global_cues:
            overlap = seen & set(bank)
            assert not overlap
            seen |= set(bank)

    def test_dataset_reproducible(self):
        a = make_topics_dataset(n_docs=120, seed=4, vocab_scale=4)
        b = make_topics_dataset(n_docs=120, seed=4, vocab_scale=4)
        np.testing.assert_array_equal(a.train.y, b.train.y)
        assert a.primitive_names == b.primitive_names

    def test_four_topics(self):
        ds = make_topics_dataset(n_docs=200, seed=0, vocab_scale=4)
        assert ds.n_classes == 4
        assert set(np.unique(ds.train.y)) <= {0, 1, 2, 3}
