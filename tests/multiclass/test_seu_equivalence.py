"""Equivalence of the vectorized K-class SEU scorer and the scalar reference.

The multiclass twin of ``tests/core/test_seu_equivalence.py``: randomized
small datasets, every example checked against the enumerating Eq.-1
transcription, plus the transparency contract of the refit-scoped cache.
"""

from types import SimpleNamespace

import numpy as np
import pytest
import scipy.sparse as sp

from repro.multiclass.base import posterior_entropy_mc
from repro.multiclass.lf import MultiClassLFFamily
from repro.multiclass.selection import MCSessionState
from repro.multiclass.seu import MCSEUSelector


def random_mc_state(
    seed: int, n: int = 35, n_primitives: int = 12, n_classes: int = 3, density: float = 0.3
):
    """A synthetic multiclass session state over a random incidence matrix."""
    rng = np.random.default_rng(seed)
    dense = (rng.random((n, n_primitives)) < density).astype(np.float64)
    B = sp.csr_matrix(dense)
    family = MultiClassLFFamily([f"p{j}" for j in range(n_primitives)], B, n_classes)
    priors = rng.dirichlet(np.full(n_classes, 5.0))
    dataset = SimpleNamespace(
        train=SimpleNamespace(B=B, n=n),
        class_priors=priors,
        n_classes=n_classes,
    )
    proxy = rng.dirichlet(np.ones(n_classes), size=n)
    soft = rng.dirichlet(np.ones(n_classes), size=n)
    return MCSessionState(
        dataset=dataset,
        family=family,
        iteration=0,
        lfs=[],
        L_train=np.full((n, 0), -1, dtype=np.int8),
        soft_labels=soft,
        entropies=posterior_entropy_mc(soft),
        proxy_proba=proxy,
        selected=set(),
        rng=np.random.default_rng(seed + 1),
    )


@pytest.mark.parametrize("seed", range(5))
@pytest.mark.parametrize("utility", ["full", "no-informativeness", "no-correctness"])
@pytest.mark.parametrize("user_model", ["accuracy", "uniform", "thresholded"])
class TestVectorizedMatchesScalarReference:
    def test_every_example(self, seed, utility, user_model):
        state = random_mc_state(seed)
        selector = MCSEUSelector(user_model=user_model, utility=utility, warmup=0)
        expected = selector.expected_utilities(state)
        assert expected.shape == (state.n_train,)
        for idx in range(state.n_train):
            scalar = selector.expected_utility_of(idx, state)
            assert scalar == pytest.approx(expected[idx], rel=1e-9, abs=1e-9), (
                f"example {idx}: vectorized {expected[idx]} != reference {scalar}"
            )


class TestCachingIsTransparent:
    def test_cached_scores_match_uncached(self):
        uncached = random_mc_state(7)
        cached = random_mc_state(7)
        cached.cache = {}
        selector = MCSEUSelector(warmup=0)
        baseline = selector.expected_utilities(uncached)
        first = selector.expected_utilities(cached)
        second = selector.expected_utilities(cached)
        np.testing.assert_allclose(first, baseline, rtol=0, atol=0)
        assert second is first, "second call should return the memoized vector"
        assert ("seu_expected", "accuracy", "full") in cached.cache


def per_column_loop_reference(selector: MCSEUSelector, state) -> np.ndarray:
    """The historical per-label-column scoring loop, kept as a bit oracle."""
    convention = state.convention
    B = state.B
    proxy = state.resolve_proxy()
    acc = convention.accuracy_table(state.family, proxy)
    weights = selector.user_model.pick_weight_table(acc)
    utils = selector.utility.score_table(
        B, state.entropies, convention.signed_agreement(proxy)
    )
    priors = convention.class_prior_vector(state.dataset)
    expected = np.zeros(state.n_train)
    for j in range(len(convention.labels)):
        numerator = np.asarray(B @ (weights[:, j] * utils[:, j])).ravel()
        denominator = np.asarray(B @ weights[:, j]).ravel()
        contribution = np.divide(
            numerator,
            denominator,
            out=np.zeros_like(numerator),
            where=denominator > 1e-12,
        )
        expected += priors[j] * contribution
    return expected


@pytest.mark.parametrize("seed", range(5))
@pytest.mark.parametrize("n_classes", [3, 5])
@pytest.mark.parametrize("utility", ["full", "no-informativeness", "no-correctness"])
class TestSingleMatmulBitIdentical:
    def test_equals_historical_per_column_loop(self, seed, n_classes, utility):
        state = random_mc_state(seed, n_classes=n_classes)
        selector = MCSEUSelector(utility=utility, warmup=0)
        np.testing.assert_array_equal(
            selector.expected_utilities(state),
            per_column_loop_reference(selector, state),
        )
