"""Guards on the committed sweep-throughput benchmark record.

`BENCH_sweep_throughput.json` is the performance ledger of the parallel
sweep path: the serial/parallel wall clocks, the bit-identical flag, and
the machine context must not silently disappear when the benchmark is
regenerated.  The same check runs in the CI sweep smoke
(`bench_sweep_throughput.py --quick`).
"""

import json
import sys
from pathlib import Path

REPO_ROOT = Path(__file__).resolve().parent.parent


def load_checker():
    sys.path.insert(0, str(REPO_ROOT))
    from benchmarks.bench_sweep_throughput import (
        MIN_CPUS_FOR_TARGET,
        SPEEDUP_TARGET,
        check_record,
    )

    return check_record, SPEEDUP_TARGET, MIN_CPUS_FOR_TARGET


def load_record():
    return json.loads((REPO_ROOT / "BENCH_sweep_throughput.json").read_text())


class TestCommittedSweepBenchRecord:
    def test_record_passes_schema_check(self):
        check_record, *_ = load_checker()
        assert check_record(load_record()) == []

    def test_parallel_results_were_bit_identical(self):
        assert load_record()["bit_identical"] is True

    def test_grid_is_at_least_four_methods_by_five_seeds(self):
        record = load_record()
        spec = record["spec"]
        assert len(spec["methods"]) >= 4
        assert spec["n_seeds"] >= 5
        assert record["n_jobs_grid"] == (
            len(spec["methods"]) * len(spec["datasets"]) * spec["n_seeds"]
        )

    def test_speedup_target_enforced_when_cores_available(self):
        # The ≥2.5× target only has meaning with enough CPUs to
        # parallelize on; the record must carry the machine context that
        # decides it, and check_record must enforce the target there.
        check_record, target, min_cpus = load_checker()
        record = load_record()
        assert isinstance(record["machine"]["cpu_count"], int)
        if record["machine"]["cpu_count"] >= min_cpus:
            assert record["speedup"] >= target

        # And the enforcement path itself works: a many-core record with a
        # sub-target speedup must fail the check.
        bad = json.loads(json.dumps(record))
        bad["machine"]["cpu_count"] = 64
        bad["speedup"] = 1.0
        assert any("speedup" in p for p in check_record(bad))

    def test_wall_clocks_positive(self):
        record = load_record()
        assert record["serial"]["wall_seconds"] > 0
        assert record["parallel"]["wall_seconds"] > 0
        assert record["parallel"]["jobs"] >= 2
