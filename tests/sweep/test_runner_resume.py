"""Sweep execution: parallel parity, crash-resume, and job skipping."""

import numpy as np
import pytest

from repro.data import load_dataset
from repro.experiments import evaluate_method, make_method
from repro.sweep import ResultStore, SweepSpec, run_sweep
from repro.sweep.runner import _validate_spec_resolvable
from repro.sweep.worker import (
    SweepJobCrash,
    load_named_dataset,
    parallel_learning_curves,
    run_sweep_job,
)

SPEC_KW = dict(
    datasets=("youtube",), n_seeds=2, n_iterations=8, eval_every=3, scale="tiny"
)


@pytest.fixture(scope="module")
def dataset():
    return load_dataset("youtube", scale="tiny", seed=0)


class TestRunSweep:
    def test_results_match_serial_evaluate_method(self, tmp_path, dataset):
        spec = SweepSpec(methods=("random", "abstain"), **SPEC_KW)
        report = run_sweep(spec, tmp_path / "out", jobs=1)
        assert report.complete
        for method in spec.methods:
            expected = evaluate_method(
                make_method(method),
                method,
                dataset,
                n_iterations=spec.n_iterations,
                eval_every=spec.eval_every,
                n_seeds=spec.n_seeds,
                base_seed=spec.base_seed,
            )
            got = report.results[("youtube", method)]
            assert len(got.curves) == spec.n_seeds
            for a, b in zip(expected.curves, got.curves):
                assert a.iterations == b.iterations
                assert a.scores == b.scores

    def test_parallel_pool_is_bit_identical_to_serial(self, tmp_path):
        spec = SweepSpec(methods=("random", "disagree"), **SPEC_KW)
        serial = run_sweep(spec, tmp_path / "serial", jobs=1)
        pooled = run_sweep(spec, tmp_path / "pooled", jobs=2)
        assert serial.complete and pooled.complete
        for cell, result in serial.results.items():
            other = pooled.results[cell]
            for a, b in zip(result.curves, other.curves):
                assert a.iterations == b.iterations
                assert a.scores == b.scores

    def test_kill_and_resume_skips_completed_jobs(self, tmp_path):
        spec = SweepSpec(methods=("random", "abstain"), **SPEC_KW)
        out = tmp_path / "out"
        # "Kill" after one job via the budget knob.
        first = run_sweep(spec, out, jobs=1, max_jobs=1)
        assert len(first.ran) == 1 and not first.complete
        store = ResultStore(out)
        done_key = first.ran[0]
        mtime = store.result_path(done_key).stat().st_mtime_ns

        resumed = run_sweep(spec, out, jobs=1)
        assert resumed.complete
        assert done_key in resumed.skipped
        assert done_key not in resumed.ran
        # The finished job's record was not rewritten (no recomputation).
        assert store.result_path(done_key).stat().st_mtime_ns == mtime

        # And the resumed sweep's final results equal a fresh one's.
        fresh = run_sweep(spec, tmp_path / "fresh", jobs=1)
        for cell, result in fresh.results.items():
            other = resumed.results[cell]
            for a, b in zip(result.curves, other.curves):
                assert a.scores == b.scores

    def test_orphaned_checkpoint_of_completed_job_is_collected(self, tmp_path):
        # A crash between write_result and clear_checkpoint leaves a stale
        # checkpoint behind a completed job; resume must sweep it away.
        spec = SweepSpec(methods=("random",), **SPEC_KW)
        out = tmp_path / "out"
        run_sweep(spec, out, jobs=1)
        store = ResultStore(out)
        key = spec.jobs()[0].key
        orphan = store.checkpoint_path(key)
        orphan.parent.mkdir(parents=True, exist_ok=True)
        orphan.write_bytes(b"stale")
        report = run_sweep(spec, out, jobs=1)
        assert key in report.skipped
        assert not orphan.exists()

    def test_unknown_names_fail_before_running(self, tmp_path):
        with pytest.raises(ValueError, match="unknown dataset"):
            run_sweep(
                SweepSpec(methods=("random",), datasets=("nope",)), tmp_path / "a"
            )
        with pytest.raises(ValueError, match="unknown method"):
            run_sweep(
                SweepSpec(methods=("nope",), datasets=("youtube",)), tmp_path / "b"
            )
        # Nothing was written for either.
        assert not (tmp_path / "a").exists() and not (tmp_path / "b").exists()

    def test_mc_dataset_resolves_mc_registry(self):
        _validate_spec_resolvable(
            SweepSpec(methods=("snorkel-mc",), datasets=("topics",))
        )
        with pytest.raises(ValueError, match="unknown multiclass method"):
            _validate_spec_resolvable(
                SweepSpec(methods=("nemo",), datasets=("topics",))
            )


class TestMidJobCrashResume:
    def test_checkpoint_resume_is_bit_identical(self, tmp_path, dataset):
        spec = SweepSpec(
            methods=("seu",), datasets=("youtube",), n_seeds=1,
            n_iterations=12, eval_every=4, scale="tiny",
        )
        out = tmp_path / "out"
        store = ResultStore(out)
        store.bind_spec(spec)
        job = spec.jobs()[0]

        with pytest.raises(SweepJobCrash):
            run_sweep_job(
                job.to_dict(), str(out), checkpoint_every=5, fail_after_iteration=7
            )
        assert store.checkpoint_path(job.key).exists()
        assert store.read_result(job.key) is None

        report = run_sweep(spec, out, jobs=1, checkpoint_every=5)
        assert report.complete
        record = store.read_result(job.key)
        assert record["resumed_from_iteration"] == 5
        assert not store.checkpoint_path(job.key).exists()  # cleared when done

        expected = evaluate_method(
            make_method("seu"), "seu", dataset,
            n_iterations=12, eval_every=4, n_seeds=1, base_seed=0,
        )
        assert record["iterations"] == expected.curves[0].iterations
        assert record["scores"] == expected.curves[0].scores

    def test_torn_checkpoint_restarts_from_scratch(self, tmp_path, dataset):
        spec = SweepSpec(
            methods=("random",), datasets=("youtube",), n_seeds=1,
            n_iterations=6, eval_every=3, scale="tiny",
        )
        out = tmp_path / "out"
        store = ResultStore(out)
        store.bind_spec(spec)
        job = spec.jobs()[0]
        ckpt = store.checkpoint_path(job.key)
        ckpt.parent.mkdir(parents=True, exist_ok=True)
        ckpt.write_bytes(b"torn checkpoint bytes")

        key, payload = run_sweep_job(job.to_dict(), str(out), checkpoint_every=3)
        assert payload["resumed_from_iteration"] == 0
        expected = evaluate_method(
            make_method("random"), "random", dataset,
            n_iterations=6, eval_every=3, n_seeds=1, base_seed=0,
        )
        assert payload["scores"] == expected.curves[0].scores


class TestParallelEvaluateMethod:
    def test_jobs_parity_with_serial(self, dataset):
        serial = evaluate_method(
            make_method("random"), "random", dataset,
            n_iterations=6, eval_every=2, n_seeds=3,
        )
        parallel = evaluate_method(
            make_method("random"), "random", dataset,
            n_iterations=6, eval_every=2, n_seeds=3, jobs=2,
        )
        assert len(serial.curves) == len(parallel.curves)
        for a, b in zip(serial.curves, parallel.curves):
            assert a.iterations == b.iterations
            assert a.scores == b.scores
        assert serial.summary_mean == parallel.summary_mean
        assert serial.summary_std == parallel.summary_std

    def test_mc_jobs_parity_with_serial(self):
        from repro.multiclass.experiments import evaluate_mc_method

        mc = load_named_dataset("topics", scale="tiny", seed=0)
        serial = evaluate_mc_method(
            "snorkel-mc", mc, n_iterations=5, eval_every=2, n_seeds=2
        )
        parallel = evaluate_mc_method(
            "snorkel-mc", mc, n_iterations=5, eval_every=2, n_seeds=2, jobs=2
        )
        for a, b in zip(serial.curves, parallel.curves):
            assert a.scores == b.scores

    def test_unpicklable_factory_fails_with_clear_error(self, dataset):
        closure_threshold = 0.5

        def closure_factory(ds, seed):  # pragma: no cover - never called
            return make_method("random", user_threshold=closure_threshold)(ds, seed)

        with pytest.raises(ValueError, match="picklable"):
            parallel_learning_curves(
                closure_factory, dataset, seeds=[1, 2], n_iterations=3,
                eval_every=1, jobs=2,
            )

    def test_invalid_jobs_rejected(self, dataset):
        with pytest.raises(ValueError, match="jobs"):
            evaluate_method(make_method("random"), "random", dataset, jobs=0)


class TestJobSeedStability:
    def test_job_seed_equals_recorded_seed(self, tmp_path):
        spec = SweepSpec(methods=("random",), **SPEC_KW)
        report = run_sweep(spec, tmp_path / "out", jobs=1)
        store = ResultStore(tmp_path / "out")
        for job in spec.jobs():
            record = store.read_result(job.key)
            assert record["seed"] == job.seed
        assert report.complete

    def test_scores_are_plain_floats(self, tmp_path):
        spec = SweepSpec(methods=("random",), **SPEC_KW)
        run_sweep(spec, tmp_path / "out", jobs=1)
        record = ResultStore(tmp_path / "out").read_result(spec.jobs()[0].key)
        assert all(isinstance(s, float) for s in record["scores"])
        assert all(isinstance(i, int) for i in record["iterations"])
        assert np.isfinite(record["scores"]).all()
