"""Sweep-store checkpoint GC: orphans, completed jobs, and the age cap."""

import os
import time

from repro.sweep.spec import SweepSpec
from repro.sweep.store import ResultStore


def fake_checkpoint(store: ResultStore, key: str, age_seconds: float = 0.0):
    path = store.checkpoint_path(key)
    path.parent.mkdir(parents=True, exist_ok=True)
    path.write_bytes(b"x")
    if age_seconds:
        stamp = time.time() - age_seconds
        os.utime(path, (stamp, stamp))
    return path


class TestGcCheckpoints:
    def test_orphans_and_completed_collected(self, tmp_path):
        store = ResultStore(tmp_path)
        pending = fake_checkpoint(store, "job-pending")
        completed = fake_checkpoint(store, "job-completed")
        orphan = fake_checkpoint(store, "job-from-another-grid")
        deleted = store.gc_checkpoints({"job-pending"})
        assert sorted(p.name for p in deleted) == sorted(
            [completed.name, orphan.name]
        )
        assert pending.exists()

    def test_age_cap_on_survivors(self, tmp_path):
        store = ResultStore(tmp_path)
        fresh = fake_checkpoint(store, "job-fresh")
        stale = fake_checkpoint(store, "job-stale", age_seconds=10_000)
        deleted = store.gc_checkpoints(
            {"job-fresh", "job-stale"}, max_age_seconds=3600
        )
        assert [p.name for p in deleted] == [stale.name]
        assert fresh.exists()

    def test_age_cap_is_uniform_across_jobs(self, tmp_path):
        """Every over-age job checkpoint goes — no newest-file exemption.

        Each file is a *different* job's only checkpoint; exempting the
        globally newest one (the RotationPolicy rule for one session's
        snapshot directory) would make the abandoned-checkpoint contract
        arbitrary across jobs.
        """
        store = ResultStore(tmp_path)
        a = fake_checkpoint(store, "job-a", age_seconds=7200)
        b = fake_checkpoint(store, "job-b", age_seconds=7190)
        deleted = store.gc_checkpoints({"job-a", "job-b"}, max_age_seconds=3600)
        assert sorted(p.name for p in deleted) == sorted([a.name, b.name])
        assert not a.exists() and not b.exists()

    def test_missing_dir_is_noop(self, tmp_path):
        assert ResultStore(tmp_path).gc_checkpoints(set()) == []


class TestRunSweepGC:
    def test_run_sweep_collects_orphans(self, tmp_path):
        from repro.sweep.runner import run_sweep

        spec = SweepSpec(
            methods=("random",),
            datasets=("amazon",),
            n_seeds=1,
            base_seed=0,
            n_iterations=2,
            eval_every=1,
            scale="tiny",
            user_threshold=0.5,
        )
        store = ResultStore(tmp_path)
        store.bind_spec(spec)
        orphan = fake_checkpoint(store, "stale-foreign-job")
        report = run_sweep(spec, tmp_path, jobs=1, checkpoint_every=1)
        assert report.complete
        assert not orphan.exists()
        # no checkpoints linger behind the completed grid
        assert list((tmp_path / "checkpoints").glob("*.ckpt.npz")) == []
