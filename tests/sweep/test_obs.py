"""Sweep records carry engine observability sections and aggregate them."""

from repro.sweep import ResultStore, SweepSpec, session_obs
from repro.sweep.worker import run_sweep_job

SPEC_KW = dict(
    datasets=("youtube",), n_seeds=1, n_iterations=6, eval_every=3, scale="tiny"
)


def _run(tmp_path, method: str) -> tuple[dict, ResultStore]:
    spec = SweepSpec(methods=(method,), **SPEC_KW)
    store = ResultStore(tmp_path / "out")
    store.bind_spec(spec)
    (job,) = spec.jobs()
    _, payload = run_sweep_job(job.to_dict(), str(tmp_path / "out"))
    return payload, store


class TestSweepObs:
    def test_engine_job_records_obs_section(self, tmp_path):
        payload, _ = _run(tmp_path, "snorkel")
        obs = payload["obs"]
        assert set(obs) == {
            "phase_seconds",
            "refits",
            "end_fits",
            "em_iterations",
            "label_fit_seconds",
            "open_interval_seconds",
        }
        assert obs["phase_seconds"]  # engine sessions always accrue phases
        assert all(isinstance(v, float) for v in obs["phase_seconds"].values())
        # Every protocol iteration ends in exactly one refit.
        assert sum(obs["refits"].values()) == SPEC_KW["n_iterations"]
        assert sum(obs["end_fits"].values()) == SPEC_KW["n_iterations"]
        # Label-model attribution: EM iterations ran and wall time accrued.
        assert set(obs["em_iterations"]) <= {"warm", "cold"}
        assert sum(obs["em_iterations"].values()) > 0
        assert all(v >= 0.0 for v in obs["label_fit_seconds"].values())
        assert obs["open_interval_seconds"] >= 0.0

    def test_non_engine_baseline_has_no_obs_section(self, tmp_path):
        # "us" (uncertainty sampling) is a hand-label baseline without the
        # engine's phase instrumentation; its record must stay obs-free.
        payload, _ = _run(tmp_path, "us")
        assert "obs" not in payload

    def test_obs_round_trips_through_store_json(self, tmp_path):
        payload, store = _run(tmp_path, "snorkel")
        stored = store.read_result(payload["key"])
        assert stored["obs"] == payload["obs"]

    def test_summarize_obs_aggregates_engine_jobs_only(self, tmp_path):
        spec = SweepSpec(methods=("snorkel", "us"), **SPEC_KW)
        store = ResultStore(tmp_path / "out")
        store.bind_spec(spec)
        for job in spec.jobs():
            run_sweep_job(job.to_dict(), str(tmp_path / "out"))
        summary = store.summarize_obs()
        assert summary["jobs"] == 1  # only the engine-backed method contributes
        assert sum(summary["refits"].values()) == SPEC_KW["n_iterations"]
        assert summary["phase_seconds"]

    def test_summarize_obs_on_empty_store(self, tmp_path):
        summary = ResultStore(tmp_path / "empty").summarize_obs()
        assert summary == {
            "jobs": 0,
            "phase_seconds": {},
            "refits": {},
            "end_fits": {},
            "open_interval_seconds": 0.0,
        }

    def test_session_obs_requires_phase_timings(self):
        class Bare:
            pass

        assert session_obs(Bare()) is None
