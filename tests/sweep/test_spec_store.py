"""The sweep job model and the sharded result store."""

import json

import pytest

from repro.sweep.spec import SweepJob, SweepSpec
from repro.sweep.store import ResultStore


class TestSweepJob:
    def test_seed_matches_serial_protocol_derivation(self):
        from repro.utils.rng import stable_hash_seed

        job = SweepJob(method="nemo", dataset="amazon", run_idx=2, base_seed=7)
        assert job.seed == stable_hash_seed("nemo", "amazon", 2, 7)

    def test_key_is_unique_per_coordinate(self):
        spec = SweepSpec(
            methods=("a-m", "b-m"), datasets=("amazon", "yelp"), n_seeds=3
        )
        keys = [job.key for job in spec.jobs()]
        assert len(keys) == len(set(keys)) == 12

    def test_key_changes_with_protocol_settings(self):
        base = SweepJob(method="m", dataset="d", run_idx=0)
        changed = SweepJob(method="m", dataset="d", run_idx=0, n_iterations=99)
        assert base.key != changed.key
        # ... but the coordinates stay readable in clear text.
        assert base.key.startswith("d--m--r000--")

    def test_dict_round_trip(self):
        job = SweepJob(
            method="m", dataset="d", run_idx=1, base_seed=3, n_iterations=20,
            eval_every=4, scale="tiny", dataset_seed=5, user_threshold=0.6,
        )
        assert SweepJob.from_dict(job.to_dict()) == job


class TestSweepSpec:
    def test_expansion_is_deterministic_dataset_major(self):
        spec = SweepSpec(methods=("m1", "m2"), datasets=("d1", "d2"), n_seeds=2)
        triples = [(j.dataset, j.method, j.run_idx) for j in spec.jobs()]
        assert triples == [
            ("d1", "m1", 0), ("d1", "m1", 1), ("d1", "m2", 0), ("d1", "m2", 1),
            ("d2", "m1", 0), ("d2", "m1", 1), ("d2", "m2", 0), ("d2", "m2", 1),
        ]

    def test_dict_round_trip(self):
        spec = SweepSpec(
            methods=("m1",), datasets=("d1", "d2"), n_seeds=4, base_seed=9,
            n_iterations=25, eval_every=5, scale="tiny", user_threshold=0.4,
        )
        assert SweepSpec.from_dict(spec.to_dict()) == spec

    @pytest.mark.parametrize(
        "kwargs",
        [
            {"methods": (), "datasets": ("d",)},
            {"methods": ("m",), "datasets": ()},
            {"methods": ("m", "m"), "datasets": ("d",)},
            {"methods": ("m",), "datasets": ("d", "d")},
            {"methods": ("m",), "datasets": ("d",), "n_seeds": 0},
            {"methods": ("m",), "datasets": ("d",), "n_iterations": 0},
            {"methods": ("m",), "datasets": ("d",), "eval_every": 0},
        ],
    )
    def test_invalid_specs_rejected(self, kwargs):
        with pytest.raises(ValueError):
            SweepSpec(**kwargs)


class TestResultStore:
    def test_write_read_round_trip(self, tmp_path):
        store = ResultStore(tmp_path)
        payload = {"key": "k1", "scores": [0.5, 0.6]}
        path = store.write_result("k1", payload)
        assert path.exists()
        assert store.read_result("k1") == payload
        assert store.read_result("missing") is None

    def test_completed_keys_scans_all_shards(self, tmp_path):
        store = ResultStore(tmp_path, n_shards=4)
        keys = {f"job-{i}" for i in range(20)}
        for key in keys:
            store.write_result(key, {"key": key})
        assert store.completed_keys() == keys
        # More than one shard directory actually used.
        shards = {p.name for p in (tmp_path / "results").iterdir()}
        assert len(shards) > 1

    def test_shard_assignment_is_stable(self, tmp_path):
        a = ResultStore(tmp_path, n_shards=8)
        b = ResultStore(tmp_path, n_shards=8)
        for key in ("x", "y", "a-long--job--key--r001--deadbeef"):
            assert a.shard_of(key) == b.shard_of(key)
            assert 0 <= a.shard_of(key) < 8

    def test_spec_pin_accepts_same_rejects_different(self, tmp_path):
        spec = SweepSpec(methods=("m",), datasets=("d",), n_seeds=2)
        store = ResultStore(tmp_path)
        store.bind_spec(spec)
        store.bind_spec(spec)  # idempotent
        other = SweepSpec(methods=("m",), datasets=("d",), n_seeds=3)
        with pytest.raises(ValueError, match="different sweep spec"):
            store.bind_spec(other)
        assert store.load_spec() == spec

    def test_corrupted_spec_pin_fails_closed(self, tmp_path):
        store = ResultStore(tmp_path)
        store.spec_path.parent.mkdir(parents=True, exist_ok=True)
        store.spec_path.write_text("{not json")
        with pytest.raises(ValueError, match="corrupted"):
            store.bind_spec(SweepSpec(methods=("m",), datasets=("d",)))

    def test_atomic_result_write_leaves_no_temp_files(self, tmp_path):
        store = ResultStore(tmp_path)
        store.write_result("k", {"ok": True})
        leftovers = [p for p in tmp_path.rglob("*.tmp")]
        assert leftovers == []
        # Valid JSON on disk.
        assert json.loads(store.result_path("k").read_text()) == {"ok": True}

    def test_shard_count_is_pinned_to_the_directory(self, tmp_path):
        # Regression: the completed-key scan is shard-agnostic but result
        # lookups compute the shard from n_shards — a handle reopened with
        # a different count would report jobs complete while reading their
        # records back as missing.  The first writer pins the layout; later
        # handles adopt it regardless of their constructor argument.
        writer = ResultStore(tmp_path, n_shards=16)
        keys = [f"job-{i}" for i in range(12)]
        for key in keys:
            writer.write_result(key, {"key": key})
        reader = ResultStore(tmp_path, n_shards=4)  # "wrong" argument
        assert reader.n_shards == 16  # adopted the pinned layout
        assert reader.completed_keys() == set(keys)
        for key in keys:
            assert reader.read_result(key) == {"key": key}

    def test_corrupted_layout_fails_closed(self, tmp_path):
        store = ResultStore(tmp_path)
        store.write_result("k", {"key": "k"})
        store.layout_path.write_text("{broken")
        with pytest.raises(ValueError, match="layout"):
            ResultStore(tmp_path)

    def test_clear_checkpoint_is_idempotent(self, tmp_path):
        store = ResultStore(tmp_path)
        store.clear_checkpoint("never-existed")
        path = store.checkpoint_path("k")
        path.parent.mkdir(parents=True, exist_ok=True)
        path.write_bytes(b"x")
        store.clear_checkpoint("k")
        assert not path.exists()
