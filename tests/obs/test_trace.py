"""Request ids, spans, and contextvar propagation."""

import threading

from repro.obs import (
    Span,
    current_span,
    make_request_id,
    normalize_request_id,
    request_span,
)


class TestRequestIds:
    def test_minted_ids_are_unique_and_rng_free(self):
        ids = {make_request_id() for _ in range(100)}
        assert len(ids) == 100
        assert all(i.startswith("req-") for i in ids)

    def test_inbound_id_honored(self):
        assert normalize_request_id("client-abc-123") == "client-abc-123"

    def test_blank_or_unprintable_inbound_minted(self):
        assert normalize_request_id(None).startswith("req-")
        assert normalize_request_id("   ").startswith("req-")
        assert normalize_request_id("\x00\x01").startswith("req-")

    def test_inbound_id_clamped_and_sanitized(self):
        long = "x" * 500
        assert len(normalize_request_id(long)) == 128
        assert normalize_request_id("a\nb\rc") == "abc"


class TestSpan:
    def test_phase_accrual(self):
        span = Span("test")
        span.add_phase("select", 0.1)
        span.add_phase("select", 0.2)
        assert span.phases["select"] == 0.30000000000000004 or span.phases[
            "select"
        ] == 0.3  # float accrual, exact sum either way

    def test_phase_context_manager_times_body(self):
        span = Span("test")
        with span.phase("work"):
            pass
        assert span.phases["work"] >= 0.0

    def test_events_and_annotations_in_to_dict(self):
        span = Span("http.submit", request_id="req-1")
        span.event("snapshot", step=4)
        span.annotate(refit_path="warm")
        span.add_phase("develop", 0.002)
        span.finish()
        d = span.to_dict()
        assert d["request_id"] == "req-1"
        assert d["span"] == "http.submit"
        assert d["duration_ms"] >= 0.0
        assert d["phases_ms"] == {"develop": 2.0}
        assert d["events"] == [{"event": "snapshot", "step": 4}]
        assert d["refit_path"] == "warm"

    def test_finish_is_idempotent(self):
        span = Span("test").finish()
        ended = span.ended_at
        span.finish()
        assert span.ended_at == ended


class TestCurrentSpan:
    def test_request_span_installs_and_restores(self):
        assert current_span() is None
        with request_span("http.step", request_id="req-9") as span:
            assert current_span() is span
        assert current_span() is None
        assert span.ended_at is not None

    def test_nested_spans_restore_outer(self):
        with request_span("outer") as outer:
            with request_span("inner") as inner:
                assert current_span() is inner
            assert current_span() is outer

    def test_spans_are_thread_local(self):
        seen = {}

        def worker():
            seen["other"] = current_span()

        with request_span("mine"):
            t = threading.Thread(target=worker)
            t.start()
            t.join()
        assert seen["other"] is None
