"""EngineObserver wired to a real engine session: counts and attribution."""

import pytest

from repro.obs import EngineObserver, MetricsRegistry, request_span


@pytest.fixture(scope="module")
def dataset():
    from repro.data import load_dataset

    return load_dataset("amazon", scale="tiny", seed=0)


def _session(dataset, seed=0):
    from repro.core.session import DataProgrammingSession
    from repro.core.seu import SEUSelector
    from repro.interactive.simulated_user import SimulatedUser

    return DataProgrammingSession(
        dataset, SEUSelector(), SimulatedUser(dataset, seed=1), seed=seed
    )


class TestEngineObserver:
    def test_command_counts_match_protocol(self, dataset):
        registry = MetricsRegistry()
        session = _session(dataset)
        session.observer = EngineObserver(registry)
        n = 6
        session.run(n)

        commands = registry.get("repro_engine_commands_total")
        by_cmd = dict(
            (labels[0], value) for labels, value in commands.items()
        )
        assert by_cmd["propose"] == n
        # every iteration resolves as exactly one submit or decline
        assert by_cmd.get("submit", 0) + by_cmd.get("decline", 0) == n

        refits = registry.get("repro_engine_refits_total")
        assert sum(v for _, v in refits.items()) == n
        end_fits = registry.get("repro_engine_end_fits_total")
        assert sum(v for _, v in end_fits.items()) == n

    def test_label_model_attribution_counters(self, dataset):
        registry = MetricsRegistry()
        session = _session(dataset)
        session.observer = EngineObserver(registry)
        session.run(5)

        em = dict(
            (labels[0], value)
            for labels, value in registry.get(
                "repro_labelmodel_em_iterations_total"
            ).items()
        )
        assert set(em) <= {"warm", "cold"}
        assert sum(em.values()) > 0
        # The observer's totals mirror the engine's transient attribution.
        for path, total in em.items():
            assert total == session.em_iteration_counts[path]

        fit_seconds = dict(
            (labels[0], value)
            for labels, value in registry.get(
                "repro_labelmodel_fit_seconds_total"
            ).items()
        )
        assert set(fit_seconds) == set(em)
        for path, total in fit_seconds.items():
            assert total == pytest.approx(session.label_fit_seconds[path])
            assert total >= 0.0

    def test_phase_seconds_accrue_known_phases(self, dataset):
        registry = MetricsRegistry()
        session = _session(dataset)
        session.observer = EngineObserver(registry)
        session.run(4)
        phases = dict(
            (labels[0], value)
            for labels, value in registry.get("repro_engine_phase_seconds_total").items()
        )
        assert "select" in phases and "develop" in phases
        assert all(v >= 0.0 for v in phases.values())
        # the engine's own cumulative timings cover at least what the
        # observer saw (construction-time fits predate the observer)
        for phase, seconds in phases.items():
            assert session.phase_timings[phase] >= seconds - 1e-9

    def test_open_interval_excluded_from_develop(self, dataset):
        import time

        from repro.core.protocol import SimulatedDriver

        registry = MetricsRegistry()
        session = _session(dataset)
        session.observer = EngineObserver(registry)
        driver = SimulatedDriver(session)
        before = session.phase_timings["develop"]
        session.propose()  # idempotent: driver.step() reuses this pending
        time.sleep(0.05)  # user "thinks" — must not count as develop compute
        driver.step()
        think_free = session.phase_timings["develop"] - before
        assert think_free < 0.05
        assert session.open_interval_seconds >= 0.05
        open_total = registry.get("repro_engine_open_interval_seconds_total")
        assert open_total.value() >= 0.05

    def test_span_annotated_when_active(self, dataset):
        from repro.core.protocol import SimulatedDriver

        session = _session(dataset)
        session.observer = EngineObserver(MetricsRegistry())
        driver = SimulatedDriver(session)
        with request_span("http.step") as span:
            driver.step()
        assert any(k.startswith("engine.") for k in span.phases)
        assert span.annotations.get("refit_path") in {"warm", "cold"}
        assert "end_fit_mode" in span.annotations
        assert "open_interval_ms" in span.annotations

    def test_observer_is_transient_not_checkpointed(self, dataset):
        session = _session(dataset)
        session.observer = EngineObserver(MetricsRegistry())
        state = session.state_dict()
        flat = repr(sorted(state))
        assert "observer" not in flat
        assert "refit_counts" not in flat
        assert "open_interval" not in flat
        assert "em_iteration_counts" not in flat
        assert "label_fit_seconds" not in flat
