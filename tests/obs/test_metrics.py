"""Instrument semantics, registry get-or-create, exposition round-trip."""

import math
import threading

import pytest

from repro.obs import (
    DEFAULT_LATENCY_BUCKETS,
    Counter,
    Gauge,
    Histogram,
    MetricsRegistry,
    parse_prometheus_text,
)


class TestCounter:
    def test_inc_and_value(self):
        c = Counter("c_total", "help")
        c.inc()
        c.inc(amount=2.5)
        assert c.value() == 3.5

    def test_negative_increment_rejected(self):
        c = Counter("c_total", "help")
        with pytest.raises(ValueError, match="cannot decrease"):
            c.inc(amount=-1)

    def test_labeled_children_are_independent(self):
        c = Counter("c_total", "help", ("command",))
        c.inc("propose")
        c.inc("propose")
        c.inc("submit")
        assert c.value("propose") == 2.0
        assert c.value("submit") == 1.0
        assert c.items() == [(("propose",), 2.0), (("submit",), 1.0)]

    def test_wrong_label_arity_rejected(self):
        c = Counter("c_total", "help", ("a", "b"))
        with pytest.raises(ValueError, match="label value"):
            c.inc("only-one")

    def test_bound_child(self):
        c = Counter("c_total", "help", ("command",))
        bound = c.labels("step")
        bound.inc()
        bound.inc(amount=4)
        assert c.value("step") == 5.0


class TestGauge:
    def test_set_inc_dec(self):
        g = Gauge("g", "help")
        g.set(value=10)
        g.inc(amount=2)
        g.dec()
        assert g.value() == 11.0


class TestHistogram:
    def test_count_sum_and_buckets(self):
        h = Histogram("h_seconds", "help", buckets=(0.1, 1.0))
        for v in (0.05, 0.5, 5.0):
            h.observe(value=v)
        assert h.count() == 3
        assert h.sum() == pytest.approx(5.55)
        snap = h.snapshot()["values"][0]
        assert [b["count"] for b in snap["buckets"]] == [1, 2, 3]  # cumulative
        assert snap["buckets"][-1]["le"] == math.inf

    def test_quantile_interpolates_and_handles_empty(self):
        h = Histogram("h_seconds", "help", buckets=(1.0, 2.0))
        assert h.quantile(0.5) is None
        for _ in range(10):
            h.observe(value=1.5)
        q = h.quantile(0.5)
        assert 1.0 <= q <= 2.0

    def test_quantile_range_checked(self):
        h = Histogram("h", "help")
        with pytest.raises(ValueError, match="quantile"):
            h.quantile(1.5)

    def test_default_buckets_cover_interactive_band(self):
        assert DEFAULT_LATENCY_BUCKETS[0] <= 0.001
        assert DEFAULT_LATENCY_BUCKETS[-1] >= 10.0

    def test_thread_safety_no_lost_updates(self):
        h = Histogram("h_seconds", "help", ("command",), buckets=(0.5,))
        n, threads = 200, 8

        def work():
            for _ in range(n):
                h.observe("step", value=0.1)

        pool = [threading.Thread(target=work) for _ in range(threads)]
        for t in pool:
            t.start()
        for t in pool:
            t.join()
        assert h.count("step") == n * threads


class TestRegistry:
    def test_get_or_create_returns_same_instrument(self):
        r = MetricsRegistry()
        a = r.counter("x_total", "help", ("k",))
        b = r.counter("x_total", "other help ignored", ("k",))
        assert a is b

    def test_kind_mismatch_rejected(self):
        r = MetricsRegistry()
        r.counter("x_total", "help")
        with pytest.raises(ValueError, match="re-registered"):
            r.gauge("x_total", "help")

    def test_label_schema_mismatch_rejected(self):
        r = MetricsRegistry()
        r.counter("x_total", "help", ("a",))
        with pytest.raises(ValueError, match="re-registered"):
            r.counter("x_total", "help", ("b",))

    def test_snapshot_is_json_safe(self):
        import json

        r = MetricsRegistry()
        r.counter("c_total", "help", ("k",)).inc("v")
        r.histogram("h_seconds", "help", buckets=(1.0,)).observe(value=0.5)
        snap = r.snapshot()
        decoded = json.loads(json.dumps(snap))
        assert decoded["c_total"]["type"] == "counter"
        assert decoded["h_seconds"]["type"] == "histogram"


class TestExposition:
    def test_render_parse_round_trip(self):
        r = MetricsRegistry()
        r.counter("c_total", "a counter", ("command",)).inc("propose", amount=3)
        r.gauge("g", "a gauge").set(value=7)
        h = r.histogram("h_seconds", "a histogram", buckets=(0.1, 1.0))
        h.observe(value=0.05)
        h.observe(value=0.5)
        text = r.render_prometheus()
        assert text.endswith("\n")
        assert "# TYPE c_total counter" in text
        samples = parse_prometheus_text(text)
        assert samples['c_total{command="propose"}'] == 3.0
        assert samples["g"] == 7.0
        assert samples['h_seconds_bucket{le="+Inf"}'] == 2.0
        assert samples["h_seconds_count"] == 2.0

    def test_label_values_escaped(self):
        c = Counter("c_total", "help", ("k",))
        c.inc('we"ird\nvalue')
        lines = []
        c.render(lines)
        sample = [l for l in lines if not l.startswith("#")][0]
        assert '\\"' in sample and "\\n" in sample and "\n" not in sample

    def test_empty_registry_renders_empty(self):
        assert MetricsRegistry().render_prometheus() == ""
