"""Structured JSON logging: one line per record, silent by default."""

import io
import json
import logging

from repro.obs import JsonLineFormatter, attach_stderr_handler, get_logger
from repro.obs.log import LOGGER_NAME, log_event


def _drop_test_handlers():
    logger = logging.getLogger(LOGGER_NAME)
    for handler in list(logger.handlers):
        if getattr(handler, "_repro_obs_stderr", False):
            logger.removeHandler(handler)


class TestJsonFormatter:
    def test_record_renders_as_one_json_line(self):
        record = logging.LogRecord(LOGGER_NAME, logging.INFO, __file__, 1, "hello %s", ("x",), None)
        record.command = "step"
        line = JsonLineFormatter().format(record)
        payload = json.loads(line)
        assert "\n" not in line
        assert payload["msg"] == "hello x"
        assert payload["level"] == "info"
        assert payload["command"] == "step"
        assert isinstance(payload["ts"], float)

    def test_non_json_extras_stringified(self):
        record = logging.LogRecord(LOGGER_NAME, logging.INFO, __file__, 1, "m", (), None)
        record.path = object()
        assert json.loads(JsonLineFormatter().format(record))["path"]


class TestLogger:
    def test_silent_by_default(self, capsys):
        _drop_test_handlers()
        log_event("nothing_attached", command="step")
        captured = capsys.readouterr()
        assert "nothing_attached" not in captured.err + captured.out

    def test_attach_is_idempotent(self):
        try:
            logger = attach_stderr_handler()
            attach_stderr_handler()
            marked = [
                h for h in logger.handlers if getattr(h, "_repro_obs_stderr", False)
            ]
            assert len(marked) == 1
        finally:
            _drop_test_handlers()

    def test_log_event_emits_structured_line(self):
        stream = io.StringIO()
        try:
            attach_stderr_handler(stream=stream)
            log_event("http_request", command="propose", outcome="200")
            payload = json.loads(stream.getvalue().strip())
            assert payload["msg"] == "http_request"
            assert payload["command"] == "propose"
            assert payload["outcome"] == "200"
        finally:
            _drop_test_handlers()

    def test_get_logger_has_null_handler(self):
        assert any(
            isinstance(h, logging.NullHandler) for h in get_logger().handlers
        )
