"""Tests for the soft-label logistic regression end model."""

import numpy as np
import pytest
import scipy.sparse as sp

from repro.endmodel.logistic import SoftLabelLogisticRegression


def separable(n=300, seed=0):
    rng = np.random.default_rng(seed)
    X = rng.standard_normal((n, 3))
    y = np.where(X[:, 0] - X[:, 1] > 0, 1, -1)
    return X, y


class TestFit:
    def test_learns_separable_data(self):
        X, y = separable()
        clf = SoftLabelLogisticRegression().fit(X, (y + 1) / 2)
        assert (clf.predict(X) == y).mean() > 0.95

    def test_soft_targets(self):
        X, y = separable(seed=1)
        q = np.where(y == 1, 0.8, 0.2)
        clf = SoftLabelLogisticRegression().fit(X, q)
        assert (clf.predict(X) == y).mean() > 0.9

    def test_hard_pm1_labels_accepted(self):
        X, y = separable(seed=2)
        clf = SoftLabelLogisticRegression().fit(X, y.astype(float))
        assert (clf.predict(X) == y).mean() > 0.95

    def test_sparse_input(self):
        X, y = separable(seed=3)
        clf = SoftLabelLogisticRegression().fit(sp.csr_matrix(X), (y + 1) / 2)
        assert (clf.predict(sp.csr_matrix(X)) == y).mean() > 0.95

    def test_sample_weights_shift_fit(self):
        X = np.array([[1.0], [1.0], [-1.0]])
        q = np.array([1.0, 1.0, 0.0])
        heavy_neg = SoftLabelLogisticRegression(l2=0.0, penalize_intercept=True).fit(
            X, q, sample_weight=np.array([1.0, 1.0, 50.0])
        )
        balanced = SoftLabelLogisticRegression(l2=0.0, penalize_intercept=True).fit(X, q)
        assert heavy_neg.predict_proba(np.array([[0.5]]))[0] < balanced.predict_proba(
            np.array([[0.5]])
        )[0]

    def test_rejects_bad_targets(self):
        X, _ = separable()
        with pytest.raises(ValueError, match="soft labels"):
            SoftLabelLogisticRegression().fit(X, np.full(X.shape[0], 1.5))

    def test_rejects_length_mismatch(self):
        X, _ = separable()
        with pytest.raises(ValueError):
            SoftLabelLogisticRegression().fit(X, np.array([0.5]))

    def test_rejects_negative_weights(self):
        X, y = separable()
        with pytest.raises(ValueError):
            SoftLabelLogisticRegression().fit(X, (y + 1) / 2, sample_weight=-np.ones(len(y)))

    def test_invalid_hyperparams(self):
        with pytest.raises(ValueError):
            SoftLabelLogisticRegression(l2=-1)
        with pytest.raises(ValueError):
            SoftLabelLogisticRegression(max_iter=0)


class TestBehaviour:
    def test_predict_before_fit_raises(self):
        with pytest.raises(RuntimeError):
            SoftLabelLogisticRegression().predict(np.zeros((1, 2)))

    def test_stronger_l2_shrinks_weights(self):
        X, y = separable(seed=4)
        weak = SoftLabelLogisticRegression(l2=1e-4).fit(X, (y + 1) / 2)
        strong = SoftLabelLogisticRegression(l2=10.0).fit(X, (y + 1) / 2)
        assert np.linalg.norm(strong.coef_) < np.linalg.norm(weak.coef_)

    def test_intercept_penalty_bounds_one_class_confidence(self):
        X = np.abs(np.random.default_rng(0).standard_normal((100, 2)))
        q = np.full(100, 0.97)
        free = SoftLabelLogisticRegression(penalize_intercept=False, l2=1.0).fit(X, q)
        tied = SoftLabelLogisticRegression(penalize_intercept=True, l2=1.0).fit(X, q)
        assert abs(tied.intercept_) < abs(free.intercept_)

    def test_warm_start_preserves_dimensions_check(self):
        X, y = separable()
        clf = SoftLabelLogisticRegression(warm_start=True).fit(X, (y + 1) / 2)
        coef_first = clf.coef_.copy()
        clf.fit(X, (y + 1) / 2)
        np.testing.assert_allclose(clf.coef_, coef_first, atol=1e-3)

    def test_clone_unfitted(self):
        clf = SoftLabelLogisticRegression(l2=0.5, penalize_intercept=True)
        clone = clf.clone_unfitted()
        assert clone.l2 == 0.5 and clone.penalize_intercept
        assert clone.coef_ is None

    def test_decision_function_monotone_with_proba(self):
        X, y = separable(seed=5)
        clf = SoftLabelLogisticRegression().fit(X, (y + 1) / 2)
        scores = clf.decision_function(X)
        probas = clf.predict_proba(X)
        order = np.argsort(scores)
        assert np.all(np.diff(probas[order]) >= -1e-12)
