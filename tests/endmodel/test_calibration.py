"""Tests for Platt calibration."""

import numpy as np
import pytest

from repro.endmodel.calibration import PlattCalibrator
from repro.endmodel.logistic import SoftLabelLogisticRegression


class TestPlattCalibrator:
    def test_informative_scores_keep_ranking(self):
        rng = np.random.default_rng(0)
        scores = rng.standard_normal(200) * 3
        y = np.where(scores + 0.3 * rng.standard_normal(200) > 0, 1, -1)
        cal = PlattCalibrator().fit(scores, y)
        p = cal.transform(np.array([-2.0, 0.0, 2.0]))
        assert p[0] < p[1] < p[2]

    def test_uninformative_scores_flatten_to_base_rate(self):
        rng = np.random.default_rng(1)
        scores = rng.standard_normal(300)
        y = np.where(rng.random(300) < 0.5, 1, -1)  # independent of scores
        cal = PlattCalibrator().fit(scores, y)
        p = cal.transform(np.array([-5.0, 5.0]))
        assert abs(p[0] - p[1]) < 0.25  # much flatter than raw sigmoids

    def test_anticorrelated_scores_clamped_not_inverted(self):
        rng = np.random.default_rng(2)
        scores = rng.standard_normal(300)
        y = np.where(scores < 0, 1, -1)  # inverted relationship
        cal = PlattCalibrator().fit(scores, y)
        assert cal.slope_ == 0.0  # never trust the model inverted

    def test_constant_scores_give_base_rate(self):
        y = np.array([1, 1, -1, -1, -1, -1, -1, -1])
        cal = PlattCalibrator().fit(np.zeros(8), y)
        p = cal.transform(np.zeros(3))
        np.testing.assert_allclose(p, 0.25, atol=0.05)

    def test_transform_before_fit_raises(self):
        with pytest.raises(RuntimeError):
            PlattCalibrator().transform(np.zeros(2))

    def test_fit_transform_from_end_model(self):
        rng = np.random.default_rng(3)
        X = rng.standard_normal((200, 2))
        y = np.where(X[:, 0] > 0, 1, -1)
        model = SoftLabelLogisticRegression().fit(X, (y + 1) / 2)
        cal = PlattCalibrator()
        p = cal.fit_transform_from(model, X, y, X)
        assert p.shape == (200,)
        assert ((p >= 0.5).astype(int) * 2 - 1 == y).mean() > 0.9
