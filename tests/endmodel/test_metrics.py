"""Tests for evaluation metrics."""

import numpy as np
import pytest
from hypothesis import given, settings
from hypothesis.extra.numpy import arrays
from hypothesis import strategies as st

from repro.endmodel.metrics import (
    accuracy_score,
    f1_score,
    get_metric,
    learning_curve_summary,
    precision_score,
    recall_score,
    soft_label_accuracy,
)

LABELS = arrays(int, st.integers(1, 30), elements=st.sampled_from([-1, 1]))


class TestAccuracy:
    def test_perfect(self):
        y = np.array([1, -1, 1])
        assert accuracy_score(y, y) == 1.0

    def test_half(self):
        assert accuracy_score(np.array([1, -1]), np.array([1, 1])) == 0.5

    def test_rejects_non_binary(self):
        with pytest.raises(ValueError):
            accuracy_score(np.array([1, 0]), np.array([1, 1]))


class TestPrecisionRecallF1:
    def test_known_values(self):
        y_true = np.array([1, 1, -1, -1, 1])
        y_pred = np.array([1, -1, 1, -1, 1])
        assert precision_score(y_true, y_pred) == pytest.approx(2 / 3)
        assert recall_score(y_true, y_pred) == pytest.approx(2 / 3)
        assert f1_score(y_true, y_pred) == pytest.approx(2 / 3)

    def test_no_predicted_positives(self):
        y_true = np.array([1, -1])
        y_pred = np.array([-1, -1])
        assert precision_score(y_true, y_pred) == 0.0
        assert f1_score(y_true, y_pred) == 0.0

    def test_no_actual_positives(self):
        y_true = np.array([-1, -1])
        y_pred = np.array([1, -1])
        assert recall_score(y_true, y_pred) == 0.0

    @given(LABELS)
    @settings(max_examples=40, deadline=None)
    def test_f1_between_precision_and_recall_extremes(self, y):
        rng = np.random.default_rng(0)
        pred = np.where(rng.random(len(y)) < 0.5, 1, -1)
        p, r, f = (
            precision_score(y, pred),
            recall_score(y, pred),
            f1_score(y, pred),
        )
        assert min(p, r) - 1e-9 <= f <= max(p, r) + 1e-9


class TestSoftLabelAccuracy:
    def test_thresholding(self):
        y = np.array([1, -1, 1])
        proba = np.array([0.9, 0.2, 0.4])
        assert soft_label_accuracy(y, proba) == pytest.approx(2 / 3)


class TestRegistryAndSummary:
    def test_get_metric(self):
        assert get_metric("accuracy") is accuracy_score
        assert get_metric("f1") is f1_score

    def test_unknown_metric(self):
        with pytest.raises(ValueError):
            get_metric("mcc")

    def test_curve_summary_is_mean(self):
        assert learning_curve_summary([0.5, 0.7, 0.9]) == pytest.approx(0.7)

    def test_empty_curve_raises(self):
        with pytest.raises(ValueError):
            learning_curve_summary([])
