"""Tests for the soft-label softmax end model."""

import numpy as np
import pytest
import scipy.sparse as sp

from repro.endmodel.logistic import SoftLabelLogisticRegression
from repro.endmodel.softmax import SoftLabelSoftmaxRegression


def separable_3class(n=240, seed=0):
    """Three Gaussian blobs in 2-D, one per class."""
    rng = np.random.default_rng(seed)
    centers = np.array([[0.0, 4.0], [4.0, -2.0], [-4.0, -2.0]])
    y = rng.integers(3, size=n)
    X = centers[y] + 0.6 * rng.standard_normal((n, 2))
    return X, y


class TestFitting:
    def test_learns_separable_blobs(self):
        X, y = separable_3class()
        Q = np.zeros((len(y), 3))
        Q[np.arange(len(y)), y] = 1.0
        clf = SoftLabelSoftmaxRegression(n_classes=3).fit(X, Q)
        assert (clf.predict(X) == y).mean() > 0.95

    def test_accepts_hard_label_vector(self):
        X, y = separable_3class()
        clf = SoftLabelSoftmaxRegression(n_classes=3).fit(X, y)
        assert (clf.predict(X) == y).mean() > 0.95

    def test_soft_targets_shift_boundary(self):
        X = np.array([[0.0], [1.0], [2.0], [3.0]])
        confident = np.array([[0.99, 0.01], [0.99, 0.01], [0.01, 0.99], [0.01, 0.99]])
        hedged = np.array([[0.6, 0.4], [0.6, 0.4], [0.4, 0.6], [0.4, 0.6]])
        p_confident = SoftLabelSoftmaxRegression(n_classes=2).fit(X, confident)
        p_hedged = SoftLabelSoftmaxRegression(n_classes=2).fit(X, hedged)
        # hedged targets produce flatter probabilities
        spread_confident = np.ptp(p_confident.predict_proba(X)[:, 1])
        spread_hedged = np.ptp(p_hedged.predict_proba(X)[:, 1])
        assert spread_hedged < spread_confident

    def test_sparse_input(self):
        X, y = separable_3class()
        clf = SoftLabelSoftmaxRegression(n_classes=3).fit(sp.csr_matrix(X), y)
        assert (clf.predict(sp.csr_matrix(X)) == y).mean() > 0.9

    def test_sample_weights_zero_out_rows(self):
        X = np.array([[0.0], [1.0], [10.0], [11.0]])
        Q = np.array([[1, 0], [1, 0], [0, 1], [0, 1]], dtype=float)
        w = np.array([1.0, 1.0, 0.0, 0.0])
        clf = SoftLabelSoftmaxRegression(n_classes=2, l2=1e-6).fit(X, Q, sample_weight=w)
        # with the class-1 rows zeroed out, the model has no reason to
        # separate: predictions at 10 stay close to the class-0 side
        assert clf.predict_proba(np.array([[0.5]]))[0, 0] > 0.4

    def test_warm_start_reuses_solution(self):
        X, y = separable_3class(n=120)
        clf = SoftLabelSoftmaxRegression(n_classes=3, warm_start=True).fit(X, y)
        coef_before = clf.coef_.copy()
        clf.fit(X, y)
        # refitting the same problem from the previous optimum stays put
        np.testing.assert_allclose(clf.coef_, coef_before, atol=1e-2)


class TestBinaryConsistency:
    def test_matches_binary_logistic_on_two_classes(self):
        rng = np.random.default_rng(1)
        X = rng.standard_normal((150, 3))
        q = 1.0 / (1.0 + np.exp(-(X @ np.array([1.0, -2.0, 0.5]))))
        soft_binary = q
        soft_mc = np.stack([1 - q, q], axis=1)
        binary = SoftLabelLogisticRegression(l2=1e-2).fit(X, soft_binary)
        mc = SoftLabelSoftmaxRegression(n_classes=2, l2=1e-2).fit(X, soft_mc)
        p_binary = binary.predict_proba(X)
        p_mc = mc.predict_proba(X)[:, 1]
        # Softmax with K=2 is over-parameterized but under matching L2 the
        # predictive probabilities agree closely.
        np.testing.assert_allclose(p_binary, p_mc, atol=0.03)


class TestValidation:
    def test_rejects_bad_shapes(self):
        clf = SoftLabelSoftmaxRegression(n_classes=3)
        with pytest.raises(ValueError, match="shape"):
            clf.fit(np.zeros((4, 2)), np.zeros((4, 2)))

    def test_rejects_non_stochastic_rows(self):
        clf = SoftLabelSoftmaxRegression(n_classes=2)
        with pytest.raises(ValueError, match="row-stochastic"):
            clf.fit(np.zeros((2, 1)), np.array([[0.9, 0.9], [0.1, 0.1]]))

    def test_rejects_out_of_range_hard_labels(self):
        clf = SoftLabelSoftmaxRegression(n_classes=2)
        with pytest.raises(ValueError, match="hard labels"):
            clf.fit(np.zeros((2, 1)), np.array([0, 5]))

    def test_rejects_negative_weights(self):
        clf = SoftLabelSoftmaxRegression(n_classes=2)
        with pytest.raises(ValueError, match="non-negative"):
            clf.fit(
                np.zeros((2, 1)),
                np.array([[1.0, 0.0], [0.0, 1.0]]),
                sample_weight=np.array([1.0, -1.0]),
            )

    def test_predict_before_fit_raises(self):
        with pytest.raises(RuntimeError, match="not fitted"):
            SoftLabelSoftmaxRegression(n_classes=2).predict(np.zeros((1, 1)))

    def test_constructor_validation(self):
        with pytest.raises(ValueError, match="n_classes"):
            SoftLabelSoftmaxRegression(n_classes=1)
        with pytest.raises(ValueError, match="l2"):
            SoftLabelSoftmaxRegression(n_classes=2, l2=-1.0)
        with pytest.raises(ValueError, match="max_iter"):
            SoftLabelSoftmaxRegression(n_classes=2, max_iter=0)

    def test_clone_unfitted(self):
        clf = SoftLabelSoftmaxRegression(n_classes=3, l2=0.5)
        clone = clf.clone_unfitted()
        assert clone.n_classes == 3
        assert clone.l2 == 0.5
        assert clone.coef_ is None
