"""Edge cases of the sliced prediction path on both end models.

``predict_proba_rows`` feeds the partial-split consumers (serve-layer
score requests, the lazy proxy); its contract is plain: empty row sets
are legal, duplicate rows are legal (each occurrence predicted), indices
outside the matrix must raise instead of wrapping Python-style, and every
returned row must equal the corresponding row of the full
``predict_proba``.
"""

import numpy as np
import pytest
import scipy.sparse as sp

from repro.endmodel.logistic import SoftLabelLogisticRegression
from repro.endmodel.softmax import SoftLabelSoftmaxRegression

N, D, K = 80, 12, 4


@pytest.fixture(scope="module")
def fitted_binary():
    rng = np.random.default_rng(0)
    X = sp.random(N, D, density=0.4, format="csr", random_state=1)
    q = rng.uniform(0, 1, size=N)
    return SoftLabelLogisticRegression().fit(X, q), X


@pytest.fixture(scope="module")
def fitted_softmax():
    rng = np.random.default_rng(2)
    X = sp.random(N, D, density=0.4, format="csr", random_state=3)
    Q = rng.dirichlet(np.ones(K), size=N)
    return SoftLabelSoftmaxRegression(n_classes=K).fit(X, Q), X


class TestBinary:
    def test_empty_rows(self, fitted_binary):
        model, X = fitted_binary
        out = model.predict_proba_rows(X, np.array([], dtype=int))
        assert out.shape == (0,)

    def test_duplicate_rows_predicted_per_occurrence(self, fitted_binary):
        model, X = fitted_binary
        out = model.predict_proba_rows(X, [5, 5, 9, 5])
        assert out.shape == (4,)
        assert out[0] == out[1] == out[3]
        full = model.predict_proba(X)
        np.testing.assert_array_equal(out, full[[5, 5, 9, 5]])

    @pytest.mark.parametrize("bad", [[N], [0, -1], [-N - 1], [3, N + 7]])
    def test_out_of_range_raises_not_wraps(self, fitted_binary, bad):
        model, X = fitted_binary
        with pytest.raises(IndexError):
            model.predict_proba_rows(X, bad)

    def test_row_for_row_parity_with_full_prediction(self, fitted_binary):
        model, X = fitted_binary
        rows = np.random.default_rng(4).choice(N, size=37, replace=True)
        np.testing.assert_array_equal(
            model.predict_proba_rows(X, rows), model.predict_proba(X)[rows]
        )


class TestSoftmax:
    def test_empty_rows(self, fitted_softmax):
        model, X = fitted_softmax
        out = model.predict_proba_rows(X, [])
        assert out.shape == (0, K)

    def test_duplicate_rows_predicted_per_occurrence(self, fitted_softmax):
        model, X = fitted_softmax
        out = model.predict_proba_rows(X, [7, 2, 7])
        assert out.shape == (3, K)
        np.testing.assert_array_equal(out[0], out[2])

    @pytest.mark.parametrize("bad", [[N], [0, -1], [-N - 1], [3, N + 7]])
    def test_out_of_range_raises_not_wraps(self, fitted_softmax, bad):
        model, X = fitted_softmax
        with pytest.raises(IndexError):
            model.predict_proba_rows(X, bad)

    def test_row_for_row_parity_with_full_prediction_k_gt_2(self, fitted_softmax):
        model, X = fitted_softmax
        assert model.n_classes > 2
        rows = np.random.default_rng(5).choice(N, size=29, replace=True)
        np.testing.assert_array_equal(
            model.predict_proba_rows(X, rows), model.predict_proba(X)[rows]
        )
