"""Tests for the synthetic corpus generator."""

import numpy as np
import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.data.synthetic import (
    ClusterSpec,
    CorpusGenerator,
    CorpusSpec,
    make_toy_clusters,
)


def small_spec(**overrides) -> CorpusSpec:
    defaults = dict(
        name="unit",
        clusters=(
            ClusterSpec(
                name="c0",
                marker_words=("alpha", "beta"),
                local_positive=("lp0", "lp1"),
                local_negative=("ln0", "ln1"),
            ),
            ClusterSpec(
                name="c1",
                marker_words=("gamma", "delta"),
                local_positive=("lp2", "lp3"),
                local_negative=("ln2", "ln3"),
                weight=0.5,
            ),
        ),
        global_positive=("goodword", "niceword"),
        global_negative=("badword", "uglyword"),
        common_words=("the", "and"),
        mean_doc_length=12.0,
    )
    defaults.update(overrides)
    return CorpusSpec(**defaults)


class TestSpecValidation:
    def test_valid_spec_ok(self):
        small_spec()

    def test_mixture_weights_must_sum_to_one(self):
        with pytest.raises(ValueError, match="sum to 1"):
            small_spec(p_common=0.9)

    def test_positive_ratio_bounds(self):
        with pytest.raises(ValueError):
            small_spec(positive_ratio=0.0)

    def test_reliability_bounds(self):
        with pytest.raises(ValueError):
            small_spec(global_reliability=0.4)

    def test_requires_clusters(self):
        with pytest.raises(ValueError, match="cluster"):
            small_spec(clusters=())

    def test_negative_zipf_rejected(self):
        with pytest.raises(ValueError):
            small_spec(zipf_exponent=-1.0)


class TestGeneration:
    def test_sizes_and_labels(self):
        corpus = CorpusGenerator(small_spec()).generate(50, seed=0)
        assert len(corpus) == 50
        assert set(np.unique(corpus.labels)) <= {-1, 1}
        assert corpus.clusters.max() < 2

    def test_deterministic(self):
        gen = CorpusGenerator(small_spec())
        a = gen.generate(30, seed=7)
        b = gen.generate(30, seed=7)
        assert a.texts == b.texts
        np.testing.assert_array_equal(a.labels, b.labels)

    def test_different_seeds_differ(self):
        gen = CorpusGenerator(small_spec())
        a = gen.generate(30, seed=1)
        b = gen.generate(30, seed=2)
        assert a.texts != b.texts

    def test_min_doc_length_respected(self):
        corpus = CorpusGenerator(small_spec(mean_doc_length=1.0, min_doc_length=4)).generate(
            40, seed=0
        )
        assert all(len(t.split()) >= 4 for t in corpus.texts)

    def test_class_balance_approximate(self):
        corpus = CorpusGenerator(small_spec(positive_ratio=0.2)).generate(2000, seed=0)
        assert 0.15 < (corpus.labels == 1).mean() < 0.25

    def test_cluster_weights_respected(self):
        corpus = CorpusGenerator(small_spec()).generate(3000, seed=0)
        share_c0 = (corpus.clusters == 0).mean()
        assert 0.58 < share_c0 < 0.75  # weights 1.0 vs 0.5 => ~2/3

    def test_lexicon_contains_global_and_local_cues(self):
        corpus = CorpusGenerator(small_spec()).generate(10, seed=0)
        assert corpus.lexicon["goodword"] == 1
        assert corpus.lexicon["badword"] == -1
        assert corpus.lexicon["lp0"] == 1
        assert corpus.lexicon["ln2"] == -1

    def test_global_cues_indicative(self):
        spec = small_spec(global_reliability=0.95)
        corpus = CorpusGenerator(spec).generate(3000, seed=0)
        has_good = np.array(["goodword" in t.split() for t in corpus.texts])
        acc = (corpus.labels[has_good] == 1).mean()
        assert acc > 0.75

    def test_local_cues_more_accurate_at_home(self):
        # Borrowed cue polarity is randomized per (word, cluster), so any
        # single cue may stay accidentally correct abroad; the *average*
        # over cues must decay away from home (the Fig. 2 phenomenon).
        clusters = tuple(
            ClusterSpec(
                name=f"c{k}",
                marker_words=(f"m{k}a", f"m{k}b"),
                local_positive=(f"lp{k}a", f"lp{k}b", f"lp{k}c"),
                local_negative=(f"ln{k}a", f"ln{k}b", f"ln{k}c"),
            )
            for k in range(4)
        )
        spec = small_spec(clusters=clusters, local_leak=0.4, local_reliability=0.95)
        corpus = CorpusGenerator(spec).generate(8000, seed=3)
        token_sets = [set(t.split()) for t in corpus.texts]
        home_accs, away_accs = [], []
        for k in range(4):
            for cue in (f"lp{k}a", f"lp{k}b", f"lp{k}c"):
                has_cue = np.array([cue in toks for toks in token_sets])
                home = has_cue & (corpus.clusters == k)
                away = has_cue & (corpus.clusters != k)
                if home.sum() > 10:
                    home_accs.append((corpus.labels[home] == 1).mean())
                if away.sum() > 10:
                    away_accs.append((corpus.labels[away] == 1).mean())
        assert home_accs and away_accs
        assert np.mean(home_accs) > np.mean(away_accs) + 0.15

    def test_zipf_head_words_more_frequent(self):
        spec = small_spec(zipf_exponent=1.2)
        corpus = CorpusGenerator(spec).generate(2000, seed=0)
        text = " ".join(corpus.texts).split()
        first = sum(1 for t in text if t == "the")
        second = sum(1 for t in text if t == "and")
        assert first > second

    def test_invalid_n_docs(self):
        with pytest.raises(ValueError):
            CorpusGenerator(small_spec()).generate(0, seed=0)

    @given(st.integers(5, 60), st.integers(0, 2**16))
    @settings(max_examples=10, deadline=None)
    def test_any_size_and_seed(self, n, seed):
        corpus = CorpusGenerator(small_spec()).generate(n, seed=seed)
        assert len(corpus.texts) == len(corpus.labels) == len(corpus.clusters) == n


class TestToyClusters:
    def test_shapes(self):
        X, y, clusters = make_toy_clusters(n_docs=100, n_clusters=4, seed=0)
        assert X.shape == (100, 2)
        assert set(np.unique(y)) <= {-1, 1}
        assert clusters.max() == 3

    def test_deterministic(self):
        a = make_toy_clusters(n_docs=50, seed=5)
        b = make_toy_clusters(n_docs=50, seed=5)
        np.testing.assert_array_equal(a[0], b[0])

    def test_clusters_label_homogeneous(self):
        X, y, clusters = make_toy_clusters(n_docs=2000, n_clusters=4, seed=0)
        for k in range(4):
            share = (y[clusters == k] == 1).mean()
            assert share > 0.8 or share < 0.2

    def test_clusters_spatially_separated(self):
        X, y, clusters = make_toy_clusters(n_docs=500, n_clusters=2, separation=8.0, noise=0.5, seed=0)
        c0 = X[clusters == 0].mean(axis=0)
        c1 = X[clusters == 1].mean(axis=0)
        assert np.linalg.norm(c0 - c1) > 8.0
