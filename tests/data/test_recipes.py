"""Tests for the six dataset recipes."""

import numpy as np
import pytest

from repro.data.recipes import DATASET_NAMES, SCALE_SIZES, load_dataset


class TestRegistry:
    def test_all_six_datasets_present(self):
        assert set(DATASET_NAMES) == {"amazon", "yelp", "imdb", "youtube", "sms", "vg"}

    def test_unknown_name(self):
        with pytest.raises(ValueError, match="unknown dataset"):
            load_dataset("mnist")

    def test_unknown_scale(self):
        with pytest.raises(ValueError, match="unknown scale"):
            load_dataset("amazon", scale="huge")


class TestTinyBuilds:
    @pytest.mark.parametrize("name", DATASET_NAMES)
    def test_builds_and_has_structure(self, name):
        ds = load_dataset(name, scale="tiny", seed=0)
        total = SCALE_SIZES[name]["tiny"]
        assert ds.train.n + ds.valid.n + ds.test.n == total
        assert ds.n_primitives > 50
        assert len(ds.lexicon) > 0
        assert set(np.unique(ds.train.y)) <= {-1, 1}

    @pytest.mark.parametrize("name", DATASET_NAMES)
    def test_deterministic(self, name):
        a = load_dataset(name, scale="tiny", seed=1)
        b = load_dataset(name, scale="tiny", seed=1)
        assert a.train.texts == b.train.texts
        np.testing.assert_array_equal(a.train.y, b.train.y)

    def test_seed_changes_corpus(self):
        a = load_dataset("amazon", scale="tiny", seed=1)
        b = load_dataset("amazon", scale="tiny", seed=2)
        assert a.train.texts != b.train.texts


class TestTaskProperties:
    def test_sms_is_imbalanced_f1(self):
        ds = load_dataset("sms", scale="tiny", seed=0)
        assert ds.metric == "f1"
        assert (ds.train.y == 1).mean() < 0.3

    def test_sentiment_datasets_roughly_balanced(self):
        for name in ("amazon", "yelp", "imdb"):
            ds = load_dataset(name, scale="tiny", seed=0)
            assert ds.metric == "accuracy"
            assert 0.3 < (ds.train.y == 1).mean() < 0.7

    def test_amazon_has_four_clusters(self):
        ds = load_dataset("amazon", scale="tiny", seed=0)
        assert len(ds.cluster_names) == 4

    def test_vg_primitives_are_objects(self):
        ds = load_dataset("vg", scale="tiny", seed=0)
        assert "horse" in ds.primitive_names or "bicycle" in ds.primitive_names

    def test_spam_cue_precision_under_imbalance(self):
        ds = load_dataset("sms", scale="bench", seed=0)
        B, y = ds.train.B, ds.train.y
        names = ds.primitive_names
        # the head curated spam cues must stay usable LF material
        usable = 0
        for word in ("free", "win", "txt", "call"):
            if word not in names:
                continue
            col = np.asarray(B[:, names.index(word)].todense()).ravel() > 0
            if col.sum() >= 5 and (y[col] == 1).mean() > 0.5:
                usable += 1
        assert usable >= 2
