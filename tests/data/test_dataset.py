"""Tests for dataset containers and featurization."""

import numpy as np
import pytest

from repro.data.dataset import featurize_corpus, train_valid_test_split
from repro.data.synthetic import ClusterSpec, CorpusGenerator, CorpusSpec


def tiny_corpus(n=120, seed=0):
    spec = CorpusSpec(
        name="unit",
        clusters=(
            ClusterSpec("c0", ("alpha", "beta"), ("lp",), ("ln",)),
            ClusterSpec("c1", ("gamma", "delta"), ("lp2",), ("ln2",)),
        ),
        global_positive=("goodword",),
        global_negative=("badword",),
        common_words=("the", "and", "with"),
        mean_doc_length=10.0,
    )
    return CorpusGenerator(spec).generate(n, seed=seed)


class TestSplit:
    def test_partition_is_disjoint_and_complete(self):
        train, valid, test = train_valid_test_split(100, seed=0)
        combined = np.concatenate([train, valid, test])
        assert sorted(combined.tolist()) == list(range(100))

    def test_ratios(self):
        train, valid, test = train_valid_test_split(1000, seed=0)
        assert len(valid) == 100
        assert len(test) == 100
        assert len(train) == 800

    def test_deterministic(self):
        a = train_valid_test_split(50, seed=3)
        b = train_valid_test_split(50, seed=3)
        for x, y in zip(a, b):
            np.testing.assert_array_equal(x, y)

    def test_invalid_ratios(self):
        with pytest.raises(ValueError):
            train_valid_test_split(10, valid_ratio=0.6, test_ratio=0.6)

    def test_min_one_example_per_split(self):
        train, valid, test = train_valid_test_split(10, seed=0)
        assert len(valid) >= 1 and len(test) >= 1


class TestFeaturize:
    def test_split_sizes(self):
        ds = featurize_corpus(tiny_corpus(), seed=0)
        assert ds.train.n + ds.valid.n + ds.test.n == 120

    def test_matrix_shapes_consistent(self):
        ds = featurize_corpus(tiny_corpus(), seed=0)
        for split in ds.splits.values():
            assert split.X.shape == split.B.shape
            assert split.X.shape[0] == split.n == len(split.y)

    def test_B_is_binary(self):
        ds = featurize_corpus(tiny_corpus(), seed=0)
        assert set(np.unique(ds.train.B.toarray())) <= {0.0, 1.0}

    def test_B_pattern_matches_X(self):
        ds = featurize_corpus(tiny_corpus(), seed=0)
        assert (ds.train.B != (ds.train.X != 0)).nnz == 0

    def test_vocabulary_fitted_on_train_only(self):
        ds = featurize_corpus(tiny_corpus(), min_df=1, seed=0)
        train_tokens = set(" ".join(ds.train.texts).split())
        assert set(ds.primitive_names) <= train_tokens

    def test_label_prior_estimated_from_valid(self):
        ds = featurize_corpus(tiny_corpus(500), seed=0)
        expected = np.clip((ds.valid.y == 1).mean(), 0.05, 0.95)
        assert ds.label_prior == pytest.approx(expected)

    def test_invalid_metric(self):
        with pytest.raises(ValueError, match="metric"):
            featurize_corpus(tiny_corpus(), metric="auc")

    def test_primitive_id_lookup(self):
        ds = featurize_corpus(tiny_corpus(), seed=0)
        token = ds.primitive_names[0]
        assert ds.primitive_id(token) == 0
        with pytest.raises(KeyError):
            ds.primitive_id("not-a-token")

    def test_describe_mentions_sizes(self):
        ds = featurize_corpus(tiny_corpus(), seed=0)
        text = ds.describe()
        assert "unit" in text and "#Train=" in text

    def test_lexicon_carried_over(self):
        ds = featurize_corpus(tiny_corpus(), seed=0)
        assert ds.lexicon.get("goodword") == 1
