"""Sanity tests for the curated word banks.

The banks are pure data (DESIGN.md: "nothing here is load-bearing"), but
the generator's semantics assume two structural facts checked here: cue
banks of opposite polarity are disjoint, and tokens survive the tokenizer
unchanged (else an LF written on a bank word could never fire).
"""

import pytest

from repro.data import wordbanks
from repro.text.tokenize import simple_tokenize

BANKS = {
    "COMMON_FILLER": wordbanks.COMMON_FILLER,
    "SENTIMENT_POSITIVE": wordbanks.SENTIMENT_POSITIVE,
    "SENTIMENT_NEGATIVE": wordbanks.SENTIMENT_NEGATIVE,
}


@pytest.mark.parametrize("name", sorted(BANKS))
class TestBankHygiene:
    def test_non_empty(self, name):
        assert len(BANKS[name]) > 0

    def test_no_duplicates(self, name):
        bank = BANKS[name]
        assert len(set(bank)) == len(bank)

    def test_tokens_survive_tokenization(self, name):
        for word in BANKS[name]:
            assert simple_tokenize(word) == [word], word


class TestPolarityDisjointness:
    def test_positive_negative_disjoint(self):
        overlap = set(wordbanks.SENTIMENT_POSITIVE) & set(wordbanks.SENTIMENT_NEGATIVE)
        assert not overlap

    def test_cue_banks_disjoint_from_filler(self):
        filler = set(wordbanks.COMMON_FILLER)
        assert not filler & set(wordbanks.SENTIMENT_POSITIVE)
        assert not filler & set(wordbanks.SENTIMENT_NEGATIVE)

    def test_cluster_markers_disjoint_from_sentiment_cues(self):
        cues = set(wordbanks.SENTIMENT_POSITIVE) | set(wordbanks.SENTIMENT_NEGATIVE)
        for cluster, markers in wordbanks.AMAZON_CLUSTERS.items():
            assert not cues & set(markers), cluster
