"""Tests for sampled corpus growth (the perf-bench path to 500k rows)."""

import numpy as np
import pytest

from repro.data import grow_corpus, load_dataset
from repro.data.synthetic import CorpusGenerator


def _base(n_docs=200, seed=5):
    from repro.data import recipes, wordbanks as wb
    from repro.data.synthetic import CorpusSpec

    targets = recipes.BANK_TARGETS["long"]
    g_pos, g_neg, common, taken = recipes._expanded_globals(
        "amazon", wb.SENTIMENT_POSITIVE, wb.SENTIMENT_NEGATIVE, wb.COMMON_FILLER, targets
    )
    clusters = recipes._clusters_from_banks(
        "amazon", wb.AMAZON_CLUSTERS, wb.AMAZON_LOCAL_CUES,
        recipes.CLUSTER_WEIGHTS["amazon"], targets, taken,
    )
    spec = CorpusSpec(
        name="amazon", clusters=clusters, global_positive=g_pos,
        global_negative=g_neg, common_words=common,
    )
    return CorpusGenerator(spec).generate(n_docs, seed=seed)


class TestGrowCorpus:
    def test_reaches_target_size_and_keeps_base_prefix(self):
        base = _base()
        grown = grow_corpus(base, 500, seed=1)
        assert len(grown) == 500
        assert grown.texts[: len(base)] == base.texts
        np.testing.assert_array_equal(grown.labels[: len(base)], base.labels)
        np.testing.assert_array_equal(grown.clusters[: len(base)], base.clusters)

    def test_no_new_vocabulary(self):
        base = _base()
        grown = grow_corpus(base, 450, seed=2)
        base_vocab = set(" ".join(base.texts).split())
        grown_vocab = set(" ".join(grown.texts).split())
        assert grown_vocab <= base_vocab

    def test_bootstrap_docs_keep_source_metadata_and_length(self):
        base = _base()
        grown = grow_corpus(base, 300, seed=3)
        base_by_text_len = {}
        for i, text in enumerate(base.texts):
            base_by_text_len.setdefault(len(text.split()), []).append(i)
        for i in range(len(base), len(grown)):
            tokens = grown.texts[i].split()
            # Every grown doc's length must match some base doc of the same
            # cluster and label (bootstrap preserves all three).
            candidates = base_by_text_len.get(len(tokens), [])
            assert any(
                base.labels[j] == grown.labels[i]
                and base.clusters[j] == grown.clusters[i]
                for j in candidates
            )

    def test_deterministic_given_seed(self):
        base = _base()
        a = grow_corpus(base, 400, seed=7)
        b = grow_corpus(base, 400, seed=7)
        assert a.texts == b.texts
        np.testing.assert_array_equal(a.labels, b.labels)

    def test_same_size_returns_base(self):
        base = _base()
        assert grow_corpus(base, len(base), seed=0) is base

    def test_shrinking_rejected(self):
        base = _base()
        with pytest.raises(ValueError, match="grow"):
            grow_corpus(base, len(base) - 1, seed=0)

    def test_lexicon_and_cluster_names_carried(self):
        base = _base()
        grown = grow_corpus(base, 260, seed=4)
        assert grown.lexicon == base.lexicon
        assert grown.cluster_names == base.cluster_names


class TestLoadDatasetGrowFrom:
    def test_grow_from_builds_full_sized_dataset(self):
        ds = load_dataset("amazon", scale="bench", seed=0, n_docs=600, grow_from=300)
        total = sum(split.n for split in ds.splits.values())
        assert total == 600
        # Same feature-space family as a directly generated corpus: the
        # vocabulary comes from the same word banks (min_df/max_df cutoffs
        # fall differently, so only substantial overlap is guaranteed).
        direct = load_dataset("amazon", scale="bench", seed=0, n_docs=600)
        overlap = set(ds.primitive_names) & set(direct.primitive_names)
        assert len(overlap) > 0.5 * len(direct.primitive_names)

    def test_grow_from_noop_when_not_smaller(self):
        grown = load_dataset("amazon", scale="tiny", seed=0, grow_from=10**9)
        direct = load_dataset("amazon", scale="tiny", seed=0)
        np.testing.assert_array_equal(
            np.asarray(grown.train.X.todense()), np.asarray(direct.train.X.todense())
        )
