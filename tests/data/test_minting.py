"""Tests for pseudo-word minting."""

import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.data.minting import expand_bank, mint_words


class TestMintWords:
    def test_count_and_uniqueness(self):
        words = mint_words(50, seed=0)
        assert len(words) == 50
        assert len(set(words)) == 50

    def test_deterministic(self):
        assert mint_words(20, seed=3) == mint_words(20, seed=3)

    def test_avoids_taken(self):
        taken = set(mint_words(30, seed=0))
        fresh = mint_words(30, seed=0, taken=taken)
        assert not (set(fresh) & taken)

    def test_lowercase_alpha(self):
        for word in mint_words(40, seed=1):
            assert word.isalpha() and word.islower()

    def test_zero(self):
        assert mint_words(0, seed=0) == []

    def test_negative_raises(self):
        with pytest.raises(ValueError):
            mint_words(-1, seed=0)

    @given(st.integers(0, 2**16))
    @settings(max_examples=20, deadline=None)
    def test_always_unique(self, seed):
        words = mint_words(25, seed=seed)
        assert len(set(words)) == 25


class TestExpandBank:
    def test_curated_words_stay_first(self):
        bank = expand_bank(("great", "super"), 10, seed=0)
        assert bank[:2] == ("great", "super")
        assert len(bank) == 10

    def test_no_expansion_when_large_enough(self):
        bank = ("a", "b", "c")
        assert expand_bank(bank, 2, seed=0) == bank

    def test_minted_avoid_curated(self):
        bank = expand_bank(("great",), 20, seed=0)
        assert len(set(bank)) == 20

    def test_taken_respected(self):
        other = set(expand_bank((), 20, seed=0))
        bank = expand_bank((), 20, seed=0, taken=other)
        assert not (set(bank) & other)
