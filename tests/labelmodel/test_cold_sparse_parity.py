"""Sparse cold backstops: O(nnz) EM is bit-identical to the dense arithmetic.

ENGINE.md §10's contract has two halves, tested here over randomized
sparse vote matrices spanning n, m, K, coverage, and one-sided vote sets:

* **Handle-source parity (byte-equal).**  Under ``cold_path="stats"`` a
  cold fit that builds its own :class:`ColumnStats` handle from the dense
  matrix and a cold fit handed the live engine handle (grown by appends)
  produce *byte-identical* fitted state and posteriors — the structure
  identity contract: identical per-column structure ⇒ identical flat
  entry arrays ⇒ identical gather/segment-sum results.
* **Dense oracle (allclose).**  ``cold_path="stats"`` agrees with the
  preserved legacy arithmetic ``cold_path="dense"`` to float tolerance
  (BLAS/refactored summation orders differ, so byte equality is not
  promised *across* paths — only within one).

Plus the ``cold_path="auto"`` routing threshold that keeps small-n fits
(all pinned goldens) on the historical dense bits.
"""

import numpy as np
import pytest

from repro.labelmodel.dawid_skene import DawidSkene
from repro.labelmodel.matrix import (
    COLD_STATS_MIN_ROWS,
    VoteMatrix,
    resolve_cold_path,
)
from repro.labelmodel.metal import MetalLabelModel
from repro.multiclass.matrix import MC_ABSTAIN
from repro.multiclass.dawid_skene import MCDawidSkeneModel


def planted_binary(rng, n, m, p_fire=0.4, acc=0.8, one_sided=()):
    """Random planted binary matrix; columns in ``one_sided`` emit one label."""
    y = np.where(rng.random(n) < 0.5, 1, -1)
    L = np.zeros((n, m), dtype=np.int8)
    for j in range(m):
        fires = rng.random(n) < p_fire
        correct = rng.random(n) < acc
        votes = np.where(correct, y, -y)
        if j in one_sided:
            side = 1 if j % 2 == 0 else -1
            fires &= votes == side
        L[fires, j] = votes[fires]
    return L


def planted_mc(rng, n, m, K, p_fire=0.4, acc=0.8, one_sided=()):
    y = rng.integers(K, size=n)
    L = np.full((n, m), MC_ABSTAIN, dtype=np.int8)
    for j in range(m):
        fires = rng.random(n) < p_fire
        correct = rng.random(n) < acc
        wrong = (y + rng.integers(1, K, size=n)) % K
        votes = np.where(correct, y, wrong)
        if j in one_sided:
            fires &= votes == (j % K)
        L[fires, j] = votes[fires]
    return L


def appended_matrix(L, abstain):
    """A live ``VoteMatrix`` grown column-by-column, as the engine grows it."""
    vm = VoteMatrix(L.shape[0], abstain=abstain)
    for j in range(L.shape[1]):
        vm.append_column(L[:, j])
    return vm


BINARY_CASES = [
    # (seed, n, m, p_fire, one_sided)
    (0, 300, 6, 0.4, ()),
    (1, 800, 12, 0.15, ()),
    (2, 500, 8, 0.5, (1, 4)),
    (3, 2500, 10, 0.05, (0,)),
    (4, 150, 3, 0.9, ()),
]

MC_CASES = [
    # (seed, n, m, K, p_fire, one_sided)
    (0, 300, 6, 3, 0.4, ()),
    (1, 700, 10, 4, 0.2, (2, 5)),
    (2, 2500, 8, 5, 0.08, ()),
    (3, 200, 4, 3, 0.7, (0,)),
]


def _fitted_state(model):
    return {a: getattr(model, a) for a in model._FITTED_ATTRS}


def _assert_byte_equal_state(a, b):
    sa, sb = _fitted_state(a), _fitted_state(b)
    assert sa.keys() == sb.keys()
    for key in sa:
        va, vb = sa[key], sb[key]
        if isinstance(va, np.ndarray):
            assert va.tobytes() == vb.tobytes(), key
        else:
            assert va == vb, key


class TestHandleSourceParityByteEqual:
    @pytest.mark.parametrize("seed,n,m,p_fire,one_sided", BINARY_CASES)
    @pytest.mark.parametrize("model_cls", [MetalLabelModel, DawidSkene])
    def test_binary_cold_fit(self, model_cls, seed, n, m, p_fire, one_sided):
        rng = np.random.default_rng(seed)
        L = planted_binary(rng, n, m, p_fire=p_fire, one_sided=one_sided)
        vm = appended_matrix(L, abstain=0)

        self_built = model_cls(cold_path="stats").fit(L.copy())
        handed = model_cls(cold_path="stats").fit(vm.values, stats=vm.stats)

        _assert_byte_equal_state(self_built, handed)
        pa = self_built.predict_proba(L.copy())
        pb = handed.predict_proba(vm.values, stats=vm.stats)
        assert pa.tobytes() == pb.tobytes()

    @pytest.mark.parametrize("seed,n,m,K,p_fire,one_sided", MC_CASES)
    def test_mc_cold_fit(self, seed, n, m, K, p_fire, one_sided):
        rng = np.random.default_rng(seed)
        L = planted_mc(rng, n, m, K, p_fire=p_fire, one_sided=one_sided)
        vm = appended_matrix(L, abstain=MC_ABSTAIN)

        self_built = MCDawidSkeneModel(n_classes=K, cold_path="stats").fit(L.copy())
        handed = MCDawidSkeneModel(n_classes=K, cold_path="stats").fit(
            vm.values, stats=vm.stats
        )

        _assert_byte_equal_state(self_built, handed)
        pa = self_built.predict_proba(L.copy())
        pb = handed.predict_proba(vm.values, stats=vm.stats)
        assert pa.tobytes() == pb.tobytes()


class TestDenseOracle:
    @pytest.mark.parametrize("seed,n,m,p_fire,one_sided", BINARY_CASES)
    @pytest.mark.parametrize("model_cls", [MetalLabelModel, DawidSkene])
    def test_binary_stats_matches_dense(self, model_cls, seed, n, m, p_fire, one_sided):
        rng = np.random.default_rng(seed)
        L = planted_binary(rng, n, m, p_fire=p_fire, one_sided=one_sided)

        sparse = model_cls(cold_path="stats").fit(L.copy())
        dense = model_cls(cold_path="dense").fit(L.copy())

        assert sparse.converged_ == dense.converged_
        assert sparse.em_iterations_ == dense.em_iterations_
        for key, va in _fitted_state(sparse).items():
            vb = getattr(dense, key)
            if isinstance(va, np.ndarray):
                np.testing.assert_allclose(va, vb, rtol=1e-9, atol=1e-12, err_msg=key)
            elif isinstance(va, float):
                assert va == pytest.approx(vb, rel=1e-9, abs=1e-12), key
            else:
                assert va == vb, key
        np.testing.assert_allclose(
            sparse.predict_proba(L.copy()),
            dense.predict_proba(L.copy()),
            rtol=1e-9,
            atol=1e-12,
        )

    @pytest.mark.parametrize("seed,n,m,K,p_fire,one_sided", MC_CASES)
    def test_mc_stats_matches_dense(self, seed, n, m, K, p_fire, one_sided):
        rng = np.random.default_rng(seed)
        L = planted_mc(rng, n, m, K, p_fire=p_fire, one_sided=one_sided)

        sparse = MCDawidSkeneModel(n_classes=K, cold_path="stats").fit(L.copy())
        dense = MCDawidSkeneModel(n_classes=K, cold_path="dense").fit(L.copy())

        assert sparse.converged_ == dense.converged_
        assert sparse.em_iterations_ == dense.em_iterations_
        np.testing.assert_allclose(sparse.confusions_, dense.confusions_, rtol=1e-9, atol=1e-12)
        np.testing.assert_allclose(sparse.propensities_, dense.propensities_, rtol=1e-9, atol=1e-12)
        np.testing.assert_allclose(sparse.priors_, dense.priors_, rtol=1e-9, atol=1e-12)
        np.testing.assert_allclose(
            sparse.predict_proba(L.copy()),
            dense.predict_proba(L.copy()),
            rtol=1e-9,
            atol=1e-12,
        )


class TestAutoRouting:
    def test_threshold(self):
        assert resolve_cold_path("auto", COLD_STATS_MIN_ROWS - 1) == "dense"
        assert resolve_cold_path("auto", COLD_STATS_MIN_ROWS) == "stats"
        assert resolve_cold_path("stats", 1) == "stats"
        assert resolve_cold_path("dense", 10**9) == "dense"
        with pytest.raises(ValueError, match="cold_path"):
            resolve_cold_path("sparse", 100)

    def test_small_n_auto_preserves_dense_bits(self):
        # Below the threshold "auto" must reproduce the legacy dense fit
        # byte-for-byte — this is what keeps the pinned goldens green.
        rng = np.random.default_rng(7)
        L = planted_binary(rng, 500, 8)
        auto = MetalLabelModel().fit(L.copy())
        dense = MetalLabelModel(cold_path="dense").fit(L.copy())
        _assert_byte_equal_state(auto, dense)
        assert (
            auto.predict_proba(L.copy()).tobytes()
            == dense.predict_proba(L.copy()).tobytes()
        )

    def test_large_n_auto_takes_stats_path(self):
        rng = np.random.default_rng(8)
        L = planted_binary(rng, COLD_STATS_MIN_ROWS + 100, 6, p_fire=0.1)
        auto = MetalLabelModel().fit(L.copy())
        stats = MetalLabelModel(cold_path="stats").fit(L.copy())
        _assert_byte_equal_state(auto, stats)

    def test_invalid_cold_path_rejected_at_construction(self):
        for cls, kwargs in [
            (MetalLabelModel, {}),
            (DawidSkene, {}),
            (MCDawidSkeneModel, {"n_classes": 3}),
        ]:
            with pytest.raises(ValueError, match="cold_path"):
                cls(cold_path="sprase", **kwargs)
