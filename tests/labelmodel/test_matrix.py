"""Tests for label-matrix utilities."""

import numpy as np
import pytest
import scipy.sparse as sp
from hypothesis import given, settings
from hypothesis.extra.numpy import arrays
from hypothesis import strategies as st

from repro.core.lf import PrimitiveLF
from repro.labelmodel.matrix import (
    abstain_counts,
    apply_lfs,
    conflict_counts,
    conflict_fraction,
    coverage,
    coverage_mask,
    lf_accuracies,
    lf_coverages,
    overlap_fraction,
    summary,
    validate_label_matrix,
    vote_tallies,
)

LABEL_MATRICES = arrays(
    np.int8,
    st.tuples(st.integers(1, 20), st.integers(0, 6)),
    elements=st.sampled_from([-1, 0, 1]),
)


class TestApplyLfs:
    def test_votes_follow_incidence(self):
        B = sp.csr_matrix(np.array([[1, 0], [0, 1], [1, 1]], dtype=float))
        lfs = [PrimitiveLF(0, "a", 1), PrimitiveLF(1, "b", -1)]
        L = apply_lfs(lfs, B)
        expected = np.array([[1, 0], [0, -1], [1, -1]], dtype=np.int8)
        np.testing.assert_array_equal(L, expected)

    def test_empty_lf_list(self):
        B = sp.csr_matrix(np.ones((3, 2)))
        assert apply_lfs([], B).shape == (3, 0)


class TestValidate:
    def test_accepts_valid(self):
        validate_label_matrix(np.array([[1, 0], [-1, 0]]))

    def test_rejects_bad_values(self):
        with pytest.raises(ValueError, match="entries"):
            validate_label_matrix(np.array([[2, 0]]))

    def test_rejects_1d(self):
        with pytest.raises(ValueError, match="2-D"):
            validate_label_matrix(np.array([1, 0, -1]))


class TestDiagnostics:
    def setup_method(self):
        self.L = np.array(
            [[1, 0, -1],
             [0, 0, 0],
             [1, 1, 0],
             [-1, 0, -1]], dtype=np.int8)
        self.y = np.array([1, -1, 1, -1])

    def test_coverage(self):
        assert coverage(self.L) == pytest.approx(0.75)

    def test_coverage_mask(self):
        np.testing.assert_array_equal(coverage_mask(self.L), [True, False, True, True])

    def test_lf_coverages(self):
        np.testing.assert_allclose(lf_coverages(self.L), [0.75, 0.25, 0.5])

    def test_lf_accuracies(self):
        accs = lf_accuracies(self.L, self.y)
        np.testing.assert_allclose(accs, [1.0, 1.0, 0.5])

    def test_lf_accuracy_nan_when_uncovered(self):
        L = np.zeros((3, 1), dtype=np.int8)
        assert np.isnan(lf_accuracies(L, np.array([1, 1, -1]))[0])

    def test_conflicts(self):
        np.testing.assert_array_equal(conflict_counts(self.L), [1, 0, 0, 0])
        assert conflict_fraction(self.L) == pytest.approx(0.25)

    def test_abstains(self):
        np.testing.assert_array_equal(abstain_counts(self.L), [1, 3, 1, 1])

    def test_overlap(self):
        assert overlap_fraction(self.L) == pytest.approx(0.75)

    def test_vote_tallies(self):
        pos, neg = vote_tallies(self.L)
        np.testing.assert_array_equal(pos, [1, 0, 2, 0])
        np.testing.assert_array_equal(neg, [1, 0, 0, 2])

    def test_summary_keys(self):
        stats = summary(self.L, self.y)
        assert stats["n_lfs"] == 3
        assert "mean_lf_accuracy" in stats

    def test_empty_matrix_stats(self):
        L = np.zeros((0, 3), dtype=np.int8)
        assert coverage(L) == 0.0


class TestProperties:
    @given(LABEL_MATRICES)
    @settings(max_examples=40, deadline=None)
    def test_counts_consistent(self, L):
        pos, neg = vote_tallies(L)
        np.testing.assert_array_equal(pos + neg + abstain_counts(L), L.shape[1])

    @given(LABEL_MATRICES)
    @settings(max_examples=40, deadline=None)
    def test_conflict_implies_overlap(self, L):
        assert conflict_fraction(L) <= overlap_fraction(L) + 1e-12

    @given(LABEL_MATRICES)
    @settings(max_examples=40, deadline=None)
    def test_coverage_invariant_to_column_permutation(self, L):
        if L.shape[1] < 2:
            return
        perm = np.roll(np.arange(L.shape[1]), 1)
        assert coverage(L) == coverage(L[:, perm])
