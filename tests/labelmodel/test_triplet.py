"""Tests for the triplet-method label model."""

import numpy as np
import pytest

from repro.labelmodel.triplet import TripletLabelModel


def planted(n=4000, m=6, seed=0):
    rng = np.random.default_rng(seed)
    y = np.where(rng.random(n) < 0.5, 1, -1)
    acc = rng.uniform(0.6, 0.9, m)
    L = np.zeros((n, m), dtype=np.int8)
    for j in range(m):
        fires = rng.random(n) < 0.7
        correct = rng.random(n) < acc[j]
        L[fires, j] = np.where(correct[fires], y[fires], -y[fires])
    return L, y, acc


class TestTriplet:
    def test_closed_form_recovers_accuracy_order(self):
        L, y, acc = planted()
        model = TripletLabelModel().fit(L)
        corr = np.corrcoef(model.accuracies_, acc)[0, 1]
        assert corr > 0.8

    def test_posterior_quality(self):
        L, y, _ = planted(seed=1)
        proba = TripletLabelModel().fit_predict_proba(L)
        covered = (L != 0).any(axis=1)
        assert (np.where(proba >= 0.5, 1, -1)[covered] == y[covered]).mean() > 0.8

    def test_fallback_with_two_lfs(self):
        L = np.array([[1, -1], [1, 0], [0, -1]], dtype=np.int8)
        model = TripletLabelModel(fallback_accuracy=0.7).fit(L)
        np.testing.assert_allclose(model.accuracies_, 0.7)

    def test_empty(self):
        model = TripletLabelModel().fit(np.zeros((3, 0), dtype=np.int8))
        np.testing.assert_allclose(
            model.predict_proba(np.zeros((3, 0), dtype=np.int8)), 0.5
        )

    def test_degenerate_moments_fallback(self):
        # LFs that never co-fire leave all pairwise moments undefined.
        L = np.zeros((9, 3), dtype=np.int8)
        L[0:3, 0] = 1
        L[3:6, 1] = -1
        L[6:9, 2] = 1
        model = TripletLabelModel(fallback_accuracy=0.8).fit(L)
        np.testing.assert_allclose(model.accuracies_, 0.8)

    def test_accuracies_clipped(self):
        L, _, _ = planted(seed=2)
        model = TripletLabelModel().fit(L)
        assert np.all(model.accuracies_ >= 0.05) and np.all(model.accuracies_ <= 0.95)

    def test_invalid_params(self):
        with pytest.raises(ValueError):
            TripletLabelModel(max_triplets=0)
        with pytest.raises(ValueError):
            TripletLabelModel(fallback_accuracy=0.4)

    def test_predict_before_fit(self):
        with pytest.raises(RuntimeError):
            TripletLabelModel().predict_proba(np.zeros((2, 3), dtype=np.int8))
