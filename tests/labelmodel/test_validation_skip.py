"""Every stats-aware entry point honors the promised validation skip.

The ``stats=`` contract (ENGINE.md §4): a :class:`VoteMatrix` validates
each vote on append, so when a caller hands the matrix's live stats
handle to ``fit`` / ``fit_warm`` / ``predict_proba``, the model must not
re-scan the dense matrix for validity — the handle replaces the O(n·m)
``validate_label_matrix`` pass with an O(1) identity check.  These
regressions poison the validator and assert the stats-supplied entry
points never call it (and that the unsupplied paths still do).
"""

import numpy as np
import pytest

from repro.labelmodel.dawid_skene import DawidSkene
from repro.labelmodel.matrix import VoteMatrix
from repro.labelmodel.metal import MetalLabelModel
from repro.multiclass.dawid_skene import MCDawidSkeneModel
from repro.multiclass.matrix import MC_ABSTAIN

from tests.labelmodel.test_cold_sparse_parity import planted_binary, planted_mc


class _ValidatorPoisoned(AssertionError):
    pass


def _poison(monkeypatch, cls):
    def boom(*args, **kwargs):
        raise _ValidatorPoisoned(f"{cls.__name__} re-validated despite a stats handle")

    monkeypatch.setattr(cls, "_validated", staticmethod(boom))


def _binary_fixture():
    L = planted_binary(np.random.default_rng(0), 300, 6)
    vm = VoteMatrix.from_dense(L, abstain=0)
    return vm


def _mc_fixture(K=3):
    L = planted_mc(np.random.default_rng(0), 300, 6, K)
    vm = VoteMatrix.from_dense(L, abstain=MC_ABSTAIN)
    return vm


@pytest.mark.parametrize("cold_path", ["auto", "stats", "dense"])
@pytest.mark.parametrize("model_cls", [MetalLabelModel, DawidSkene])
def test_binary_entry_points_skip_validation(monkeypatch, model_cls, cold_path):
    vm = _binary_fixture()
    previous = model_cls(cold_path=cold_path).fit(vm.values.copy())

    _poison(monkeypatch, model_cls)
    model = model_cls(cold_path=cold_path)
    model.fit(vm.values, stats=vm.stats)
    model.fit_warm(vm.values, previous, max_iter=2, stats=vm.stats)
    model.predict_proba(vm.values, stats=vm.stats)


@pytest.mark.parametrize("cold_path", ["auto", "stats", "dense"])
def test_mc_entry_points_skip_validation(monkeypatch, cold_path):
    vm = _mc_fixture()
    previous = MCDawidSkeneModel(n_classes=3, cold_path=cold_path).fit(vm.values.copy())

    _poison(monkeypatch, MCDawidSkeneModel)
    model = MCDawidSkeneModel(n_classes=3, cold_path=cold_path)
    model.fit(vm.values, stats=vm.stats)
    model.fit_warm(vm.values, previous, max_iter=2, stats=vm.stats)
    model.predict_proba(vm.values, stats=vm.stats)


def test_validator_still_runs_without_stats(monkeypatch):
    vm = _binary_fixture()
    _poison(monkeypatch, MetalLabelModel)
    model = MetalLabelModel()
    with pytest.raises(_ValidatorPoisoned):
        model.fit(vm.values.copy())


def test_mismatched_handle_fails_loudly():
    vm = _binary_fixture()
    other = np.array(vm.values.copy())  # same content, detached buffer
    with pytest.raises(ValueError, match="stats handle"):
        MetalLabelModel().fit(other, stats=vm.stats)
