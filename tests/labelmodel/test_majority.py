"""Tests for the majority-vote label model."""

import numpy as np
import pytest
from hypothesis import given, settings
from hypothesis.extra.numpy import arrays
from hypothesis import strategies as st

from repro.labelmodel.majority import MajorityVote

LABEL_MATRICES = arrays(
    np.int8,
    st.tuples(st.integers(1, 15), st.integers(0, 5)),
    elements=st.sampled_from([-1, 0, 1]),
)


class TestMajorityVote:
    def test_unanimous_positive_close_to_one(self):
        L = np.full((4, 3), 1, dtype=np.int8)
        proba = MajorityVote(smoothing=0.0).fit_predict_proba(L)
        np.testing.assert_allclose(proba, 1.0)

    def test_uncovered_gets_prior(self):
        L = np.zeros((2, 3), dtype=np.int8)
        proba = MajorityVote(class_prior=0.3).fit_predict_proba(L)
        np.testing.assert_allclose(proba, 0.3)

    def test_tie_gets_half_with_balanced_prior(self):
        L = np.array([[1, -1]], dtype=np.int8)
        proba = MajorityVote(class_prior=0.5).fit_predict_proba(L)
        assert proba[0] == pytest.approx(0.5)

    def test_smoothing_pulls_toward_prior(self):
        L = np.array([[1]], dtype=np.int8)
        smooth = MajorityVote(class_prior=0.5, smoothing=2.0).fit_predict_proba(L)[0]
        sharp = MajorityVote(class_prior=0.5, smoothing=0.1).fit_predict_proba(L)[0]
        assert 0.5 < smooth < sharp

    def test_predict_threshold(self):
        L = np.array([[1, 1, -1], [-1, -1, 1]], dtype=np.int8)
        preds = MajorityVote().fit(L).predict(L)
        np.testing.assert_array_equal(preds, [1, -1])

    def test_invalid_prior(self):
        with pytest.raises(ValueError):
            MajorityVote(class_prior=1.0)

    def test_invalid_smoothing(self):
        with pytest.raises(ValueError):
            MajorityVote(smoothing=-1.0)

    @given(LABEL_MATRICES)
    @settings(max_examples=40, deadline=None)
    def test_proba_in_unit_interval(self, L):
        proba = MajorityVote().fit_predict_proba(L)
        assert np.all(proba >= 0) and np.all(proba <= 1)

    @given(LABEL_MATRICES)
    @settings(max_examples=40, deadline=None)
    def test_invariant_to_lf_permutation(self, L):
        if L.shape[1] < 2:
            return
        perm = np.random.default_rng(0).permutation(L.shape[1])
        a = MajorityVote().fit_predict_proba(L)
        b = MajorityVote().fit_predict_proba(L[:, perm])
        np.testing.assert_allclose(a, b)

    @given(LABEL_MATRICES)
    @settings(max_examples=40, deadline=None)
    def test_label_flip_symmetry(self, L):
        a = MajorityVote(class_prior=0.5).fit_predict_proba(L)
        b = MajorityVote(class_prior=0.5).fit_predict_proba(-L)
        np.testing.assert_allclose(a, 1 - b, atol=1e-12)
