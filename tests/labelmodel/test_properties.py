"""Cross-model property tests: invariants every label model must satisfy."""

import numpy as np
import pytest
from hypothesis import given, settings
from hypothesis.extra.numpy import arrays
from hypothesis import strategies as st

from repro.labelmodel import (
    DawidSkene,
    MajorityVote,
    MetalLabelModel,
    TripletLabelModel,
)

MODELS = {
    "majority": lambda: MajorityVote(),
    "metal": lambda: MetalLabelModel(n_iter=15),
    "dawid-skene": lambda: DawidSkene(n_iter=15),
    "triplet": lambda: TripletLabelModel(),
}

LABEL_MATRICES = arrays(
    np.int8,
    st.tuples(st.integers(2, 25), st.integers(1, 5)),
    elements=st.sampled_from([-1, 0, 1]),
)


@pytest.mark.parametrize("name", sorted(MODELS))
class TestUniversalInvariants:
    @given(L=LABEL_MATRICES)
    @settings(max_examples=25, deadline=None)
    def test_probabilities_in_unit_interval(self, name, L):
        proba = MODELS[name]().fit_predict_proba(L)
        assert proba.shape == (L.shape[0],)
        assert np.all(proba >= -1e-9) and np.all(proba <= 1 + 1e-9)

    @given(L=LABEL_MATRICES)
    @settings(max_examples=25, deadline=None)
    def test_identical_rows_get_identical_posteriors(self, name, L):
        L = np.vstack([L, L[:1]])  # duplicate the first row
        proba = MODELS[name]().fit_predict_proba(L)
        assert proba[0] == pytest.approx(proba[-1], abs=1e-9)

    @given(L=LABEL_MATRICES)
    @settings(max_examples=25, deadline=None)
    def test_column_permutation_invariance(self, name, L):
        if L.shape[1] < 2:
            return
        perm = np.roll(np.arange(L.shape[1]), 1)
        a = MODELS[name]().fit_predict_proba(L)
        b = MODELS[name]().fit_predict_proba(L[:, perm])
        np.testing.assert_allclose(a, b, atol=1e-6)

    @given(L=LABEL_MATRICES)
    @settings(max_examples=25, deadline=None)
    def test_deterministic(self, name, L):
        a = MODELS[name]().fit_predict_proba(L)
        b = MODELS[name]().fit_predict_proba(L)
        np.testing.assert_allclose(a, b)


class TestVoteMonotonicity:
    def test_extra_positive_vote_never_lowers_posterior(self):
        rng = np.random.default_rng(0)
        y = np.where(rng.random(500) < 0.5, 1, -1)
        L = np.zeros((500, 3), dtype=np.int8)
        for j in range(3):
            fires = rng.random(500) < 0.5
            correct = rng.random(500) < 0.8
            L[fires, j] = np.where(correct[fires], y[fires], -y[fires])
        model = MetalLabelModel().fit(L)
        base = model.predict_proba(L)
        boosted = L.copy()
        target = np.flatnonzero(boosted[:, 0] == 0)[:50]
        boosted[target, 0] = 1
        lifted = model.predict_proba(boosted)
        assert np.all(lifted[target] >= base[target] - 1e-9)

    def test_conflicting_votes_pull_toward_half(self):
        L_agree = np.array([[1, 1]], dtype=np.int8)
        L_conflict = np.array([[1, -1]], dtype=np.int8)
        train = np.vstack([np.tile(L_agree, (30, 1)), np.tile(L_conflict, (10, 1))])
        model = MetalLabelModel().fit(train)
        q_agree = model.predict_proba(L_agree)[0]
        q_conflict = model.predict_proba(L_conflict)[0]
        assert abs(q_conflict - 0.5) < abs(q_agree - 0.5)


class TestLabelFlipSymmetry:
    @given(L=LABEL_MATRICES)
    @settings(max_examples=20, deadline=None)
    def test_majority_flip(self, L):
        a = MajorityVote(class_prior=0.5).fit_predict_proba(L)
        b = MajorityVote(class_prior=0.5).fit_predict_proba(-L)
        np.testing.assert_allclose(a, 1 - b, atol=1e-9)

    def test_metal_flip_on_planted_votes(self):
        rng = np.random.default_rng(1)
        y = np.where(rng.random(800) < 0.5, 1, -1)
        L = np.zeros((800, 4), dtype=np.int8)
        for j in range(4):
            fires = rng.random(800) < 0.6
            correct = rng.random(800) < 0.85
            L[fires, j] = np.where(correct[fires], y[fires], -y[fires])
        a = MetalLabelModel(class_prior=0.5).fit_predict_proba(L)
        b = MetalLabelModel(class_prior=0.5).fit_predict_proba(-L)
        np.testing.assert_allclose(a, 1 - b, atol=0.02)
