"""Tests for the MeTaL-style label model."""

import numpy as np
import pytest

from repro.labelmodel.metal import MetalLabelModel


def planted_matrix(n=2000, m=6, seed=0, acc_range=(0.6, 0.9), uni_polar=False):
    """Conditionally-independent planted votes with known accuracies."""
    rng = np.random.default_rng(seed)
    y = np.where(rng.random(n) < 0.5, 1, -1)
    true_acc = rng.uniform(*acc_range, m)
    L = np.zeros((n, m), dtype=np.int8)
    for j in range(m):
        if uni_polar:
            polarity = 1 if j % 2 == 0 else -1
            fires = (y == polarity) & (rng.random(n) < 0.5)
            fires |= (y != polarity) & (rng.random(n) < 0.5 * (1 - true_acc[j]))
            L[fires, j] = polarity
        else:
            fires = rng.random(n) < 0.5
            correct = rng.random(n) < true_acc[j]
            L[fires, j] = np.where(correct[fires], y[fires], -y[fires])
    return L, y, true_acc


class TestFitBasics:
    def test_empty_matrix(self):
        model = MetalLabelModel().fit(np.zeros((5, 0), dtype=np.int8))
        np.testing.assert_allclose(model.predict_proba(np.zeros((5, 0), dtype=np.int8)), 0.5)

    def test_predict_before_fit_raises(self):
        with pytest.raises(RuntimeError):
            MetalLabelModel().predict_proba(np.zeros((2, 1), dtype=np.int8))

    def test_mismatched_columns_raise(self):
        model = MetalLabelModel().fit(np.zeros((4, 2), dtype=np.int8))
        with pytest.raises(ValueError, match="fitted with"):
            model.predict_proba(np.zeros((4, 3), dtype=np.int8))

    def test_invalid_params(self):
        with pytest.raises(ValueError):
            MetalLabelModel(n_iter=0)
        with pytest.raises(ValueError):
            MetalLabelModel(method="adamw")
        with pytest.raises(ValueError):
            MetalLabelModel(anchor=-1)


class TestRecovery:
    def test_em_recovers_planted_accuracies(self):
        L, y, true_acc = planted_matrix(seed=1)
        model = MetalLabelModel().fit(L)
        corr = np.corrcoef(model.accuracies_, true_acc)[0, 1]
        assert corr > 0.9

    def test_sgd_recovers_planted_accuracies(self):
        L, y, true_acc = planted_matrix(seed=2)
        model = MetalLabelModel(method="sgd", n_iter=300).fit(L)
        corr = np.corrcoef(model.accuracies_, true_acc)[0, 1]
        assert corr > 0.85

    def test_posterior_beats_single_lf(self):
        L, y, _ = planted_matrix(seed=3)
        covered = (L != 0).any(axis=1)
        proba = MetalLabelModel().fit_predict_proba(L)
        acc_model = (np.where(proba >= 0.5, 1, -1)[covered] == y[covered]).mean()
        acc_single = (L[covered, 0] == y[covered])[L[covered, 0] != 0].mean()
        assert acc_model > acc_single

    def test_uni_polar_does_not_collapse(self):
        # Regression test for the degenerate mode where one polarity
        # coalition is declared anti-perfect and every label collapses.
        L, y, _ = planted_matrix(seed=4, uni_polar=True, acc_range=(0.8, 0.95))
        model = MetalLabelModel().fit(L)
        proba = model.predict_proba(L)
        covered = (L != 0).any(axis=1)
        acc = (np.where(proba >= 0.5, 1, -1)[covered] == y[covered]).mean()
        assert acc > 0.75
        assert model.accuracies_.mean() > 0.5

    def test_propensities_reflect_uni_polar_fire_rates(self):
        L, y, _ = planted_matrix(seed=5, uni_polar=True, acc_range=(0.85, 0.95))
        model = MetalLabelModel().fit(L)
        # +1-voting LFs (even columns) must fire more on the positive class.
        rho = model.propensities_
        assert (rho[0, 1] > rho[0, 0]) and (rho[1, 0] > rho[1, 1])


class TestPosteriorSemantics:
    def test_uncovered_examples_get_prior_without_abstain_evidence(self):
        L, _, _ = planted_matrix(n=500, seed=6)
        L[:50] = 0
        model = MetalLabelModel(learn_prior=False, class_prior=0.3, abstain_evidence=False)
        proba = model.fit_predict_proba(L)
        np.testing.assert_allclose(proba[:50], 0.3, atol=1e-9)

    def test_abstain_evidence_shifts_uncovered(self):
        L, _, _ = planted_matrix(n=500, seed=6, uni_polar=True)
        L[:50] = 0
        base = MetalLabelModel(learn_prior=False, abstain_evidence=False).fit_predict_proba(L)
        shifted = MetalLabelModel(learn_prior=False, abstain_evidence=True).fit_predict_proba(L)
        assert not np.allclose(base[:50], shifted[:50])

    def test_learn_prior_tracks_balance(self):
        rng = np.random.default_rng(7)
        y = np.where(rng.random(3000) < 0.8, 1, -1)
        L = np.zeros((3000, 4), dtype=np.int8)
        for j in range(4):
            fires = rng.random(3000) < 0.6
            correct = rng.random(3000) < 0.85
            L[fires, j] = np.where(correct[fires], y[fires], -y[fires])
        model = MetalLabelModel(class_prior=0.5, learn_prior=True).fit(L)
        assert model.prior_ > 0.6

    def test_higher_accuracy_vote_gets_larger_weight(self):
        L, y, true_acc = planted_matrix(seed=8)
        model = MetalLabelModel().fit(L)
        weights = np.log(model.accuracies_ / (1 - model.accuracies_))
        order_est = np.argsort(weights)
        order_true = np.argsort(true_acc)
        # rank correlation of weights with true accuracies is positive
        assert np.corrcoef(order_est.argsort(), order_true.argsort())[0, 1] > 0.5

    def test_marginal_ll_finite(self):
        L, _, _ = planted_matrix(n=300, seed=9)
        model = MetalLabelModel().fit(L)
        assert np.isfinite(model._marginal_ll(L))

    def test_em_converges_flag(self):
        L, _, _ = planted_matrix(n=500, seed=10)
        model = MetalLabelModel(n_iter=200).fit(L)
        assert model.converged_


class TestWarmFit:
    def _planted(self, n=300, m=6, seed=0):
        import numpy as np
        rng = np.random.default_rng(seed)
        y = np.where(rng.random(n) < 0.5, 1, -1)
        L = np.zeros((n, m), dtype=np.int8)
        for j in range(m):
            fires = rng.random(n) < 0.5
            correct = rng.random(n) < 0.8
            L[fires, j] = np.where(correct[fires], y[fires], -y[fires])
        return L

    def test_warm_matches_cold_closely_on_well_determined_data(self):
        import numpy as np
        from repro.labelmodel.metal import MetalLabelModel
        L = self._planted()
        prev = MetalLabelModel().fit(L[:, :-1])
        cold = MetalLabelModel().fit(L)
        warm = MetalLabelModel().fit_warm(L, prev)
        np.testing.assert_allclose(
            warm.predict_proba(L), cold.predict_proba(L), atol=0.05
        )

    def test_max_iter_cap_is_call_scoped(self):
        from repro.labelmodel.metal import MetalLabelModel
        L = self._planted()
        prev = MetalLabelModel().fit(L[:, :-1])
        model = MetalLabelModel(n_iter=50)
        model.fit_warm(L, prev, max_iter=2)
        assert model.n_iter == 50, "fit_warm must not mutate the configured n_iter"

    def test_falls_back_to_cold_fit_without_previous(self):
        import numpy as np
        from repro.labelmodel.metal import MetalLabelModel
        L = self._planted()
        cold = MetalLabelModel().fit(L)
        warm = MetalLabelModel().fit_warm(L, None)
        np.testing.assert_allclose(warm.predict_proba(L), cold.predict_proba(L))
