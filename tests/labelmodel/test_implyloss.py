"""Tests for the ImplyLoss joint model."""

import numpy as np
import pytest
import scipy.sparse as sp

from repro.labelmodel.implyloss import ImplyLossModel


def rule_problem(n=400, seed=0):
    """Linearly-separable 2-D data with radius-limited rules."""
    rng = np.random.default_rng(seed)
    X = rng.standard_normal((n, 2))
    y = np.where(X[:, 0] + 0.5 * X[:, 1] > 0, 1, -1)
    L = np.zeros((n, 4), dtype=np.int8)
    exemplar_idx, exemplar_lab = [], []
    for j in range(4):
        i = int(rng.integers(0, n))
        lab = int(y[i])
        near = np.linalg.norm(X - X[i], axis=1) < 1.2
        L[near, j] = lab
        exemplar_idx.append(i)
        exemplar_lab.append(lab)
    return sp.csr_matrix(X), L, np.array(exemplar_idx), np.array(exemplar_lab), y


class TestImplyLoss:
    def test_learns_decision_boundary(self):
        X, L, e_idx, e_lab, y = rule_problem()
        model = ImplyLossModel(n_epochs=150, seed=0).fit(X, L, e_idx, e_lab)
        acc = (model.predict(X) == y).mean()
        assert acc > 0.7

    def test_loss_decreases(self):
        X, L, e_idx, e_lab, _ = rule_problem(seed=1)
        model = ImplyLossModel(n_epochs=80, seed=0).fit(X, L, e_idx, e_lab)
        history = model.loss_history_
        assert history[-1] < history[0]

    def test_rule_reliability_shape_and_range(self):
        X, L, e_idx, e_lab, _ = rule_problem(seed=2)
        model = ImplyLossModel(n_epochs=40, seed=0).fit(X, L, e_idx, e_lab)
        g = model.rule_reliability(X)
        assert g.shape == (X.shape[0], 4)
        assert np.all(g >= 0) and np.all(g <= 1)

    def test_rules_reliable_on_own_exemplars(self):
        X, L, e_idx, e_lab, _ = rule_problem(seed=3)
        model = ImplyLossModel(n_epochs=120, seed=0).fit(X, L, e_idx, e_lab)
        g = model.rule_reliability(X)
        own = g[e_idx, np.arange(len(e_idx))]
        assert own.mean() > 0.7

    def test_predict_before_fit_raises(self):
        with pytest.raises(RuntimeError):
            ImplyLossModel().predict(np.zeros((2, 2)))

    def test_shape_mismatch_raises(self):
        X, L, e_idx, e_lab, _ = rule_problem()
        with pytest.raises(ValueError, match="exemplar"):
            ImplyLossModel(n_epochs=1).fit(X, L, e_idx[:-1], e_lab)

    def test_row_mismatch_raises(self):
        X, L, e_idx, e_lab, _ = rule_problem()
        with pytest.raises(ValueError):
            ImplyLossModel(n_epochs=1).fit(X[:-5], L, e_idx, e_lab)

    def test_invalid_params(self):
        with pytest.raises(ValueError):
            ImplyLossModel(gamma=-1)
        with pytest.raises(ValueError):
            ImplyLossModel(n_epochs=0)
        with pytest.raises(ValueError):
            ImplyLossModel(class_prior=0.0)

    def test_gamma_zero_still_trains_from_exemplars(self):
        X, L, e_idx, e_lab, y = rule_problem(seed=4)
        model = ImplyLossModel(gamma=0.0, n_epochs=120, seed=0).fit(X, L, e_idx, e_lab)
        assert (model.predict(X) == y).mean() > 0.6

    def test_deterministic_given_seed(self):
        X, L, e_idx, e_lab, _ = rule_problem(seed=5)
        a = ImplyLossModel(n_epochs=30, seed=7).fit(X, L, e_idx, e_lab)
        b = ImplyLossModel(n_epochs=30, seed=7).fit(X, L, e_idx, e_lab)
        np.testing.assert_allclose(a.w_, b.w_)
