"""Unit tests for the append-only :class:`VoteMatrix` and its running stats."""

import numpy as np
import pytest
import scipy.sparse as sp

from repro.labelmodel.matrix import (
    VoteMatrix,
    abstain_counts,
    column_nonzero_rows,
    conflict_counts,
    coverage_mask,
)
from repro.multiclass.matrix import mc_abstain_counts, mc_conflict_counts, mc_coverage_mask


def random_votes(rng, n, values, abstain, p_fire=0.4):
    votes = np.full(n, abstain, dtype=np.int8)
    fired = rng.random(n) < p_fire
    votes[fired] = rng.choice(values, size=int(fired.sum()))
    return votes


class TestColumnNonzeroRows:
    def test_csc_fast_path_matches_dense(self):
        rng = np.random.default_rng(0)
        dense = (rng.random((20, 7)) < 0.3).astype(float)
        B = sp.csc_matrix(dense)
        for j in range(7):
            np.testing.assert_array_equal(
                np.sort(column_nonzero_rows(B, j)), np.flatnonzero(dense[:, j])
            )

    def test_csr_fallback_matches_dense(self):
        rng = np.random.default_rng(1)
        dense = (rng.random((15, 5)) < 0.4).astype(float)
        B = sp.csr_matrix(dense)
        for j in range(5):
            np.testing.assert_array_equal(
                np.sort(column_nonzero_rows(B, j)), np.flatnonzero(dense[:, j])
            )


class TestBinaryVoteMatrix:
    def test_appends_match_column_stack(self):
        rng = np.random.default_rng(2)
        n = 30
        vm = VoteMatrix(n, abstain=0, capacity=1)
        reference = np.zeros((n, 0), dtype=np.int8)
        for _ in range(10):
            col = random_votes(rng, n, values=[-1, 1], abstain=0)
            vm.append_column(col)
            reference = np.column_stack([reference, col]).astype(np.int8)
        np.testing.assert_array_equal(vm.values, reference)
        assert vm.shape == reference.shape

    def test_append_rows_matches_dense_lf_column(self):
        rng = np.random.default_rng(3)
        n = 25
        vm_sparse = VoteMatrix(n, abstain=0)
        vm_dense = VoteMatrix(n, abstain=0)
        for label in (1, -1, 1):
            rows = rng.choice(n, size=8, replace=False)
            col = np.zeros(n, dtype=np.int8)
            col[rows] = label
            vm_sparse.append_rows(rows, label)
            vm_dense.append_column(col)
        np.testing.assert_array_equal(vm_sparse.values, vm_dense.values)

    def test_running_stats_match_recomputed(self):
        rng = np.random.default_rng(4)
        n = 40
        vm = VoteMatrix(n, abstain=0)
        for _ in range(12):
            vm.append_column(random_votes(rng, n, values=[-1, 1], abstain=0))
            L = vm.values
            np.testing.assert_array_equal(vm.coverage_mask(), coverage_mask(L))
            np.testing.assert_array_equal(vm.conflict_counts(), conflict_counts(L))
            np.testing.assert_array_equal(vm.abstain_counts(), abstain_counts(L))
            np.testing.assert_array_equal(vm.vote_counts(1), (L == 1).sum(axis=1))
            np.testing.assert_array_equal(vm.vote_counts(-1), (L == -1).sum(axis=1))

    def test_values_is_a_view_not_a_copy(self):
        vm = VoteMatrix(5, abstain=0)
        vm.append_rows(np.array([0, 2]), 1)
        assert vm.values.base is vm._buf

    def test_growth_preserves_content(self):
        vm = VoteMatrix(6, abstain=0, capacity=1)
        columns = []
        rng = np.random.default_rng(5)
        for _ in range(9):  # forces multiple buffer doublings
            col = random_votes(rng, 6, values=[-1, 1], abstain=0)
            columns.append(col)
            vm.append_column(col)
        np.testing.assert_array_equal(vm.values, np.column_stack(columns))

    def test_from_dense_round_trips(self):
        rng = np.random.default_rng(6)
        L = np.column_stack(
            [random_votes(rng, 12, values=[-1, 1], abstain=0) for _ in range(4)]
        )
        vm = VoteMatrix.from_dense(L, abstain=0)
        np.testing.assert_array_equal(vm.values, L)
        np.testing.assert_array_equal(vm.coverage_mask(), coverage_mask(L))

    def test_rejects_abstain_vote_value(self):
        vm = VoteMatrix(4, abstain=0)
        with pytest.raises(ValueError, match="abstain"):
            vm.append_rows(np.array([1]), 0)

    def test_rejects_negative_row_indices(self):
        # Negative indices would silently wrap to the end of the buffer,
        # corrupting both the votes and every running tally.
        vm = VoteMatrix(10, abstain=0)
        with pytest.raises(ValueError, match=r"row indices"):
            vm.append_rows(np.array([2, -1]), 1)
        assert vm.m == 0 and not vm.coverage_mask().any()

    def test_rejects_out_of_range_row_indices(self):
        vm = VoteMatrix(10, abstain=0)
        with pytest.raises(ValueError, match=r"row indices"):
            vm.append_rows(np.array([0, 10]), 1)
        assert vm.m == 0

    def test_boundary_rows_accepted(self):
        vm = VoteMatrix(10, abstain=0)
        vm.append_rows(np.array([0, 9]), 1)
        np.testing.assert_array_equal(np.flatnonzero(vm.values[:, 0]), [0, 9])

    def test_rejects_non_integer_rows(self):
        vm = VoteMatrix(10, abstain=0)
        with pytest.raises(ValueError, match="integer"):
            vm.append_rows(np.array([0.5, 2.0]), 1)

    def test_rejects_duplicate_rows(self):
        # Duplicates would write the dense vote once but double-count it in
        # the running tallies and the ColumnStats fire structure.
        vm = VoteMatrix(10, abstain=0)
        with pytest.raises(ValueError, match="unique"):
            vm.append_rows(np.array([3, 3]), 1)
        assert vm.m == 0

    def test_empty_rows_accepted(self):
        vm = VoteMatrix(10, abstain=0)
        vm.append_rows(np.array([], dtype=int), 1)
        assert vm.m == 1 and not vm.coverage_mask().any()

    def test_rejects_bad_column_shape(self):
        vm = VoteMatrix(4, abstain=0)
        with pytest.raises(ValueError, match="shape"):
            vm.append_column(np.zeros(5, dtype=np.int8))

    def test_empty_matrix_diagnostics(self):
        vm = VoteMatrix(8, abstain=0)
        assert vm.coverage() == 0.0
        assert not vm.coverage_mask().any()
        assert vm.values.shape == (8, 0)


class TestMulticlassVoteMatrix:
    def test_running_stats_match_recomputed(self):
        rng = np.random.default_rng(7)
        n, K = 30, 4
        vm = VoteMatrix(n, abstain=-1)
        for _ in range(10):
            vm.append_column(random_votes(rng, n, values=list(range(K)), abstain=-1))
            L = vm.values
            np.testing.assert_array_equal(vm.coverage_mask(), mc_coverage_mask(L))
            np.testing.assert_array_equal(vm.conflict_counts(), mc_conflict_counts(L, K))
            np.testing.assert_array_equal(vm.abstain_counts(), mc_abstain_counts(L))
            for k in range(K):
                np.testing.assert_array_equal(vm.vote_counts(k), (L == k).sum(axis=1))

    def test_class_zero_votes_are_counted(self):
        # Class id 0 is a legitimate (non-abstain) vote under the -1 sentinel.
        vm = VoteMatrix(5, abstain=-1)
        vm.append_rows(np.array([0, 3]), 0)
        np.testing.assert_array_equal(vm.vote_counts(0), [1, 0, 0, 1, 0])
        np.testing.assert_array_equal(vm.coverage_mask(), [True, False, False, True, False])


class TestAppendSparse:
    def test_matches_append_column_exactly(self):
        rng = np.random.default_rng(3)
        n = 40
        dense_vm = VoteMatrix(n, abstain=-1)
        sparse_vm = VoteMatrix(n, abstain=-1)
        for _ in range(8):
            votes = random_votes(rng, n, values=[0, 1, 2], abstain=-1)
            dense_vm.append_column(votes)
            fired = np.flatnonzero(votes != -1)
            # Shuffled caller order must not matter: storage is canonical.
            order = rng.permutation(fired.size)
            sparse_vm.append_sparse(fired[order], votes[fired][order])
        np.testing.assert_array_equal(dense_vm.values, sparse_vm.values)
        np.testing.assert_array_equal(dense_vm.coverage_mask(), sparse_vm.coverage_mask())
        for k in range(3):
            np.testing.assert_array_equal(dense_vm.vote_counts(k), sparse_vm.vote_counts(k))
        for j in range(8):
            np.testing.assert_array_equal(dense_vm.stats.rows(j), sparse_vm.stats.rows(j))
            np.testing.assert_array_equal(dense_vm.stats.values(j), sparse_vm.stats.values(j))

    def test_validation(self):
        vm = VoteMatrix(5, abstain=0)
        with pytest.raises(ValueError, match="abstain"):
            vm.append_sparse(np.array([1]), np.array([0]))
        with pytest.raises(ValueError, match="same length"):
            vm.append_sparse(np.array([1, 2]), np.array([1]))
        with pytest.raises(ValueError, match="unique"):
            vm.append_sparse(np.array([1, 1]), np.array([1, -1]))
        with pytest.raises(ValueError, match=r"\[0, 5\)"):
            vm.append_sparse(np.array([5]), np.array([1]))
        with pytest.raises(ValueError, match="integer"):
            vm.append_sparse(np.array([1.5]), np.array([1]))
        assert vm.m == 0  # nothing was appended by the failed calls


class TestStateArrays:
    @pytest.mark.parametrize("abstain,values", [(0, [-1, 1]), (-1, [0, 1, 2])])
    def test_round_trip_is_bit_identical(self, abstain, values):
        rng = np.random.default_rng(9)
        n = 30
        vm = VoteMatrix(n, abstain=abstain)
        for _ in range(6):
            vm.append_column(random_votes(rng, n, values=values, abstain=abstain))
        state = vm.state_arrays()
        rebuilt = VoteMatrix.from_state_arrays(n, abstain, state)
        np.testing.assert_array_equal(vm.values, rebuilt.values)
        np.testing.assert_array_equal(vm.coverage_mask(), rebuilt.coverage_mask())
        np.testing.assert_array_equal(vm.conflict_counts(), rebuilt.conflict_counts())
        for j in range(vm.m):
            np.testing.assert_array_equal(vm.stats.rows(j), rebuilt.stats.rows(j))
            np.testing.assert_array_equal(vm.stats.values(j), rebuilt.stats.values(j))
        # The CSC assemblies (what the EM label models consume) agree too.
        a, b = vm.stats.fires_csc(), rebuilt.stats.fires_csc()
        np.testing.assert_array_equal(a.toarray(), b.toarray())

    def test_empty_matrix_round_trips(self):
        vm = VoteMatrix(7, abstain=0)
        rebuilt = VoteMatrix.from_state_arrays(7, 0, vm.state_arrays())
        assert rebuilt.shape == (7, 0)

    def test_malformed_state_rejected(self):
        with pytest.raises(ValueError, match="indptr"):
            VoteMatrix.from_state_arrays(
                5, 0, {"indptr": np.array([0, 3]), "rows": np.array([1]),
                       "values": np.array([1], dtype=np.int8)}
            )
        with pytest.raises(ValueError, match="non-decreasing"):
            VoteMatrix.from_state_arrays(
                5, 0, {"indptr": np.array([0, 2, 1]), "rows": np.array([1, 2]),
                       "values": np.array([1, 1], dtype=np.int8)}
            )
        with pytest.raises(ValueError, match="malformed"):
            VoteMatrix.from_state_arrays(5, 0, {"rows": np.array([1])})
