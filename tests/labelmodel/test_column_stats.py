"""Tests for the incremental sufficient-statistics handle (`ColumnStats`).

The tentpole contract (ENGINE.md §4): warm label-model fits given the
vote matrix's stats handle must be *bit-identical* to warm fits that build
the statistics themselves from the dense matrix, and the handle's sparse
assemblies must describe exactly the matrix they claim to.
"""

import numpy as np
import pytest
import scipy.sparse as sp

from repro.labelmodel.matrix import ColumnStats, VoteMatrix, column_stats_from_dense


def planted_binary(rng, n=200, m=6, p_fire=0.4, acc=0.8):
    y = np.where(rng.random(n) < 0.5, 1, -1)
    L = np.zeros((n, m), dtype=np.int8)
    for j in range(m):
        fires = rng.random(n) < p_fire
        correct = rng.random(n) < acc
        L[fires, j] = np.where(correct[fires], y[fires], -y[fires])
    return L


def planted_mc(rng, n=200, m=6, K=3, p_fire=0.4, acc=0.8):
    y = rng.integers(K, size=n)
    L = np.full((n, m), -1, dtype=np.int8)
    for j in range(m):
        fires = rng.random(n) < p_fire
        correct = rng.random(n) < acc
        wrong = (y + rng.integers(1, K, size=n)) % K
        L[fires, j] = np.where(correct[fires], y[fires], wrong[fires])
    return L


class TestColumnStatsStructure:
    def test_csc_assemblies_reproduce_dense_matrix(self):
        rng = np.random.default_rng(0)
        L = planted_binary(rng)
        stats = VoteMatrix.from_dense(L).stats
        np.testing.assert_array_equal(stats.signed_csc().toarray(), L.astype(float))
        np.testing.assert_array_equal(
            stats.fires_csc().toarray(), (L != 0).astype(float)
        )
        np.testing.assert_array_equal(
            stats.value_csc(1).toarray(), (L == 1).astype(float)
        )
        np.testing.assert_array_equal(
            stats.value_csc(-1).toarray(), (L == -1).astype(float)
        )

    def test_mc_value_csc_per_class(self):
        rng = np.random.default_rng(1)
        K = 4
        L = planted_mc(rng, K=K)
        stats = VoteMatrix.from_dense(L, abstain=-1).stats
        for k in range(K):
            np.testing.assert_array_equal(
                stats.value_csc(k).toarray(), (L == k).astype(float)
            )

    def test_counts_match_dense(self):
        rng = np.random.default_rng(2)
        L = planted_binary(rng)
        stats = VoteMatrix.from_dense(L).stats
        np.testing.assert_array_equal(stats.col_nnz(), (L != 0).sum(axis=0))
        np.testing.assert_array_equal(stats.value_col_counts(-1), (L == -1).sum(axis=0))
        np.testing.assert_array_equal(stats.row_value_counts(1), (L == 1).sum(axis=1))
        np.testing.assert_array_equal(stats.coverage_mask(), (L != 0).any(axis=1))

    def test_handle_is_live_across_appends(self):
        vm = VoteMatrix(10, abstain=0)
        stats = vm.stats
        vm.append_rows(np.array([0, 3]), 1)
        assert stats.m == 1
        first = stats.fires_csc()
        vm.append_rows(np.array([1, 3]), -1)
        assert stats.m == 2
        assert stats.fires_csc().shape == (10, 2)
        assert first.shape == (10, 1)  # the old assembly is not mutated

    def test_matches_ties_handle_to_view(self):
        vm = VoteMatrix(8, abstain=0)
        vm.append_rows(np.array([1, 2]), 1)
        assert vm.stats.matches(vm.values)
        assert not vm.stats.matches(vm.values.copy())
        assert not vm.stats.matches(np.zeros((8, 1), dtype=np.int8))
        other = VoteMatrix(8, abstain=0)
        other.append_rows(np.array([1, 2]), 1)
        assert not vm.stats.matches(other.values)

    def test_from_dense_structure_identical_to_live_appends(self):
        # Uniform-valued columns appended sparse-natively (the session path)
        # must yield the same CSC structure as a one-shot dense scan — this
        # is what makes handle-threaded and self-built warm fits bit-equal.
        rng = np.random.default_rng(3)
        n, m = 60, 5
        live = VoteMatrix(n, abstain=0)
        L = np.zeros((n, m), dtype=np.int8)
        for j in range(m):
            rows = np.sort(rng.choice(n, size=12, replace=False))
            label = 1 if j % 2 == 0 else -1
            live.append_rows(rows, label)
            L[rows, j] = label
        detached = column_stats_from_dense(L)
        for kind in ("fires", "signed"):
            ma = getattr(live.stats, f"{kind}_csc")()
            mb = getattr(detached, f"{kind}_csc")()
            np.testing.assert_array_equal(ma.indices, mb.indices)
            np.testing.assert_array_equal(ma.indptr, mb.indptr)
            np.testing.assert_array_equal(ma.data, mb.data)


class TestWarmFitBitIdentity:
    """Warm fits with the engine-threaded handle vs the self-built one."""

    def _binary_session(self, tiny_dataset=None):
        from repro.core.session import DataProgrammingSession
        from repro.data import load_dataset
        from repro.interactive.basic_selectors import RandomSelector
        from repro.interactive.simulated_user import SimulatedUser

        ds = load_dataset("amazon", scale="tiny", seed=0)
        session = DataProgrammingSession(
            ds,
            RandomSelector(),
            SimulatedUser(ds, seed=11),
            warm_min_train=0,
            warm_after=3,
            seed=7,
        )
        session.run(12)
        return session

    def test_binary_session_warm_fit_bit_identical(self):
        from repro.labelmodel.metal import MetalLabelModel

        session = self._binary_session()
        prev = session.label_model_
        assert isinstance(prev, MetalLabelModel) and len(session.lfs) > 3
        with_handle = session.label_model_factory().fit_warm(
            session.L_train, prev, max_iter=3, stats=session._L_train.stats
        )
        dense_copy = session.L_train.copy()
        without = session.label_model_factory().fit_warm(dense_copy, prev, max_iter=3)
        np.testing.assert_array_equal(with_handle.accuracies_, without.accuracies_)
        np.testing.assert_array_equal(with_handle.propensities_, without.propensities_)
        assert with_handle.prior_ == without.prior_

    def test_multiclass_session_warm_fit_bit_identical(self):
        from repro.multiclass import make_topics_dataset
        from repro.multiclass.selection import MCRandomSelector
        from repro.multiclass.session import MultiClassSession
        from repro.multiclass.simulated_user import MCSimulatedUser

        ds = make_topics_dataset(n_docs=400, seed=0)
        session = MultiClassSession(
            ds,
            MCRandomSelector(),
            MCSimulatedUser(ds, seed=5),
            warm_min_train=0,
            warm_after=3,
            seed=3,
        )
        session.run(12)
        prev = session.label_model_
        with_handle = session.label_model_factory().fit_warm(
            session.L_train, prev, max_iter=3, stats=session._L_train.stats
        )
        without = session.label_model_factory().fit_warm(
            session.L_train.copy(), prev, max_iter=3
        )
        np.testing.assert_array_equal(with_handle.confusions_, without.confusions_)
        np.testing.assert_array_equal(with_handle.propensities_, without.propensities_)
        np.testing.assert_array_equal(with_handle.priors_, without.priors_)

    def test_binary_dawid_skene_warm_fit_bit_identical(self):
        from repro.labelmodel.dawid_skene import DawidSkene

        rng = np.random.default_rng(9)
        L = planted_binary(rng, n=300, m=7)
        prev = DawidSkene().fit(L[:, :-1])
        vm = VoteMatrix.from_dense(L)
        with_handle = DawidSkene().fit_warm(vm.values, prev, max_iter=3, stats=vm.stats)
        without = DawidSkene().fit_warm(L.copy(), prev, max_iter=3)
        np.testing.assert_array_equal(with_handle.confusion_, without.confusion_)
        assert with_handle.prior_ == without.prior_

    def test_dawid_skene_warm_prior_seeded_from_majority(self):
        # The first class-balance update of a warm fit must come from the
        # smoothed majority posterior (as a cold fit's does), not from the
        # previous fit's converged posterior — the latter is a positive
        # feedback loop that collapses one-sided LF sets onto one class.
        from repro.labelmodel.dawid_skene import DawidSkene

        rng = np.random.default_rng(13)
        n, m = 300, 5
        # One-sided set: every LF votes +1.
        L = np.zeros((n, m), dtype=np.int8)
        for j in range(m):
            L[rng.random(n) < 0.4, j] = 1
        prev = DawidSkene().fit(L[:, :-1])
        warm = DawidSkene(n_iter=1).fit_warm(L, prev, max_iter=1)
        pos = (L == 1).sum(axis=1)
        q_majority = np.where(pos > 0, (pos + 0.5) / (pos + 1.0), 0.5)
        expected_prior = float(np.clip(q_majority.mean(), 0.01, 0.99))
        assert warm.prior_ == expected_prior

    def test_mismatched_handle_fails_loudly(self):
        from repro.labelmodel.metal import MetalLabelModel

        rng = np.random.default_rng(10)
        L = planted_binary(rng)
        vm = VoteMatrix.from_dense(L)
        prev = MetalLabelModel().fit(L[:, :-1])
        with pytest.raises(ValueError, match="stats handle"):
            MetalLabelModel().fit_warm(L.copy(), prev, stats=vm.stats)
        with pytest.raises(ValueError, match="stats handle"):
            MetalLabelModel().fit(L.copy(), stats=vm.stats)

    def test_cold_fit_with_handle_is_bit_identical_to_plain_fit(self):
        """Item (3): the handle only skips validation on cold fits."""
        from repro.labelmodel.metal import MetalLabelModel

        rng = np.random.default_rng(12)
        L = planted_binary(rng)
        vm = VoteMatrix.from_dense(L)
        a = MetalLabelModel().fit(L)
        b = MetalLabelModel().fit(vm.values, stats=vm.stats)
        np.testing.assert_array_equal(a.accuracies_, b.accuracies_)
        np.testing.assert_array_equal(a.propensities_, b.propensities_)
        np.testing.assert_array_equal(a.predict_proba(L), b.predict_proba(vm.values, stats=vm.stats))


class TestPredictProbaRows:
    def test_logistic_rows_match_full_row_for_row(self):
        from repro.endmodel.logistic import SoftLabelLogisticRegression

        rng = np.random.default_rng(0)
        X = sp.random(300, 40, density=0.1, random_state=0, format="csr")
        q = rng.random(300)
        clf = SoftLabelLogisticRegression().fit(X, q)
        full = clf.predict_proba(X)
        rows = rng.choice(300, size=57, replace=False)
        np.testing.assert_array_equal(clf.predict_proba_rows(X, rows), full[rows])
        assert clf.predict_proba_rows(X, np.array([], dtype=int)).shape == (0,)

    def test_softmax_rows_match_full_row_for_row(self):
        from repro.endmodel.softmax import SoftLabelSoftmaxRegression

        rng = np.random.default_rng(1)
        K = 4
        X = sp.random(250, 30, density=0.15, random_state=1, format="csr")
        Q = rng.random((250, K))
        Q /= Q.sum(axis=1, keepdims=True)
        clf = SoftLabelSoftmaxRegression(n_classes=K).fit(X, Q)
        full = clf.predict_proba(X)
        rows = rng.choice(250, size=41, replace=False)
        np.testing.assert_array_equal(clf.predict_proba_rows(X, rows), full[rows])
        assert clf.predict_proba_rows(X, np.array([], dtype=int)).shape == (0, K)

    def test_dense_features_match_closely(self):
        from repro.endmodel.logistic import SoftLabelLogisticRegression

        rng = np.random.default_rng(2)
        X = rng.normal(size=(100, 5))
        q = rng.random(100)
        clf = SoftLabelLogisticRegression().fit(X, q)
        rows = np.array([3, 17, 50, 99])
        np.testing.assert_allclose(
            clf.predict_proba_rows(X, rows), clf.predict_proba(X)[rows], rtol=1e-12
        )


class TestColumnStatsType:
    def test_stats_property_returns_columnstats_singleton(self):
        vm = VoteMatrix(4, abstain=0)
        assert isinstance(vm.stats, ColumnStats)
        assert vm.stats is vm.stats
