"""Tests for the Dawid-Skene label model."""

import numpy as np
import pytest

from repro.labelmodel.dawid_skene import DawidSkene


def planted(n=1500, m=5, seed=0):
    rng = np.random.default_rng(seed)
    y = np.where(rng.random(n) < 0.5, 1, -1)
    acc = rng.uniform(0.65, 0.9, m)
    L = np.zeros((n, m), dtype=np.int8)
    for j in range(m):
        fires = rng.random(n) < 0.6
        correct = rng.random(n) < acc[j]
        L[fires, j] = np.where(correct[fires], y[fires], -y[fires])
    return L, y, acc


class TestDawidSkene:
    def test_posterior_better_than_chance(self):
        L, y, _ = planted()
        proba = DawidSkene().fit_predict_proba(L)
        covered = (L != 0).any(axis=1)
        acc = (np.where(proba >= 0.5, 1, -1)[covered] == y[covered]).mean()
        assert acc > 0.72  # planted accuracies span 0.65-0.9

    def test_confusion_rows_are_distributions(self):
        L, _, _ = planted()
        model = DawidSkene().fit(L)
        np.testing.assert_allclose(model.confusion_.sum(axis=2), 1.0, atol=1e-9)

    def test_empty_matrix(self):
        model = DawidSkene().fit(np.zeros((4, 0), dtype=np.int8))
        np.testing.assert_allclose(
            model.predict_proba(np.zeros((4, 0), dtype=np.int8)), model.prior_
        )

    def test_prior_learned(self):
        rng = np.random.default_rng(1)
        y = np.where(rng.random(2000) < 0.75, 1, -1)
        L = np.zeros((2000, 4), dtype=np.int8)
        for j in range(4):
            fires = rng.random(2000) < 0.7
            correct = rng.random(2000) < 0.9
            L[fires, j] = np.where(correct[fires], y[fires], -y[fires])
        model = DawidSkene(learn_prior=True).fit(L)
        assert model.prior_ > 0.6

    def test_fixed_prior_respected(self):
        L, _, _ = planted(n=300)
        model = DawidSkene(class_prior=0.4, learn_prior=False).fit(L)
        assert model.prior_ == pytest.approx(0.4)

    def test_predict_before_fit_raises(self):
        with pytest.raises(RuntimeError):
            DawidSkene().predict_proba(np.zeros((2, 1), dtype=np.int8))

    def test_column_mismatch_raises(self):
        model = DawidSkene().fit(np.zeros((4, 2), dtype=np.int8))
        with pytest.raises(ValueError):
            model.predict_proba(np.zeros((4, 5), dtype=np.int8))

    def test_invalid_iterations(self):
        with pytest.raises(ValueError):
            DawidSkene(n_iter=0)

    def test_informative_abstains_exploited(self):
        # An LF that only fires on positives: even its abstain is evidence.
        rng = np.random.default_rng(2)
        y = np.where(rng.random(3000) < 0.5, 1, -1)
        L = np.zeros((3000, 2), dtype=np.int8)
        L[(y == 1) & (rng.random(3000) < 0.8), 0] = 1
        fires = rng.random(3000) < 0.5
        correct = rng.random(3000) < 0.85
        L[fires, 1] = np.where(correct[fires], y[fires], -y[fires])
        proba = DawidSkene().fit_predict_proba(L)
        abstainers_of_0 = L[:, 0] == 0
        # Among rows where LF0 abstains, posterior should skew negative.
        assert proba[abstainers_of_0].mean() < 0.5


class TestWarmFitDS:
    def test_max_iter_cap_is_call_scoped(self):
        import numpy as np
        from repro.multiclass.dawid_skene import MCDawidSkeneModel
        rng = np.random.default_rng(0)
        n, m, K = 300, 6, 3
        y = rng.integers(K, size=n)
        L = np.full((n, m), -1, dtype=np.int8)
        for j in range(m):
            fires = rng.random(n) < 0.5
            correct = rng.random(n) < 0.8
            wrong = (y + rng.integers(1, K, size=n)) % K
            L[fires, j] = np.where(correct[fires], y[fires], wrong[fires])
        prev = MCDawidSkeneModel(n_classes=K).fit(L[:, :-1])
        model = MCDawidSkeneModel(n_classes=K, n_iter=50)
        model.fit_warm(L, prev, max_iter=2)
        assert model.n_iter == 50, "fit_warm must not mutate the configured n_iter"

    def test_falls_back_to_cold_fit_without_previous(self):
        import numpy as np
        from repro.multiclass.dawid_skene import MCDawidSkeneModel
        rng = np.random.default_rng(1)
        L = rng.integers(-1, 3, size=(100, 4)).astype(np.int8)
        cold = MCDawidSkeneModel(n_classes=3).fit(L)
        warm = MCDawidSkeneModel(n_classes=3).fit_warm(L, None)
        np.testing.assert_allclose(warm.predict_proba(L), cold.predict_proba(L))
