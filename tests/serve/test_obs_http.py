"""HTTP-level accounting: every outcome lands in the funnel exactly once."""

import socket
import struct
import threading
import time

import pytest

from repro.serve import ServeClientError, SessionClient, SessionManager, make_server

CFG = dict(method="snorkel", dataset="amazon", scale="tiny", seed=5)


@pytest.fixture()
def service(tmp_path):
    manager = SessionManager(tmp_path, snapshot_every=2, keep_last=2)
    server = make_server(manager)
    thread = threading.Thread(target=server.serve_forever, daemon=True)
    thread.start()
    host, port = server.server_address[:2]
    client = SessionClient(f"http://{host}:{port}")
    yield manager, client
    server.shutdown()
    server.server_close()


def _http_outcomes(manager):
    counter = manager.metrics.get("repro_http_requests_total")
    if counter is None:
        return {}
    return {labels: value for labels, value in counter.items()}


class TestErrorPathAccounting:
    def test_pre_routing_errors_all_funnel(self, service):
        manager, client = service

        # 405: wrong verb on a fixed route (labeled by URL shape).
        with pytest.raises(ServeClientError) as err:
            client._request("POST", "/healthz")
        assert err.value.status == 405

        # 404: unrouteable path.
        with pytest.raises(ServeClientError) as err:
            client._request("GET", "/nothing/here")
        assert err.value.status == 404

        # 404: unknown action under a session (bounded "unknown" label).
        with pytest.raises(ServeClientError) as err:
            client._request("POST", "/sessions/ghost/sideload")
        assert err.value.status == 404

        # 413: oversized body refused before reading it off the socket.
        host, port = client._host, client._port
        raw = socket.create_connection((host, port))
        try:
            raw.sendall(
                b"POST /sessions HTTP/1.1\r\nHost: x\r\n"
                b"Content-Length: 3000000\r\n\r\n"
            )
            response = raw.recv(4096)
        finally:
            raw.close()
        assert b"413" in response.split(b"\r\n", 1)[0]

        # The response is written *before* the funnel accounts it; give
        # the handler thread a beat to finish the accounting call.
        deadline = time.monotonic() + 5.0
        while time.monotonic() < deadline:
            if _http_outcomes(manager).get(("create", "413"), 0) >= 1:
                break
            time.sleep(0.01)
        outcomes = _http_outcomes(manager)
        assert outcomes[("healthz", "405")] == 1.0
        assert outcomes[("unknown", "404")] == 2.0
        assert outcomes[("create", "413")] == 1.0
        # ... and the histogram saw the same four requests.
        hist = manager.metrics.get("repro_http_request_seconds")
        total = sum(hist.count(*labels) for labels in hist.label_sets())
        assert total == 4

    def test_disconnect_is_accounted_not_lost(self, service):
        manager, client = service
        host, port = client._host, client._port
        # A slow command (cold create) guarantees the RST lands while the
        # handler is still working, so the response write is what fails.
        body = (
            b'{"name": "gone", "method": "snorkel", "dataset": "amazon", '
            b'"scale": "tiny", "seed": 5}'
        )
        raw = socket.create_connection((host, port))
        raw.setsockopt(socket.SOL_SOCKET, socket.SO_LINGER, struct.pack("ii", 1, 0))
        raw.sendall(
            b"POST /sessions HTTP/1.1\r\nHost: x\r\n"
            b"Content-Type: application/json\r\n"
            b"Content-Length: %d\r\n\r\n%s" % (len(body), body)
        )
        time.sleep(0.05)  # let the server read the request off the socket
        raw.close()  # RST while create is still running
        deadline = time.monotonic() + 10.0
        while time.monotonic() < deadline:
            if _http_outcomes(manager).get(("create", "disconnect"), 0) >= 1:
                break
            time.sleep(0.02)
        else:
            pytest.fail(
                f"disconnect outcome never accounted; saw {_http_outcomes(manager)}"
            )

    def test_request_id_echoed_and_minted(self, service):
        import http.client

        _, client = service
        conn = http.client.HTTPConnection(client._host, client._port, timeout=10)
        try:
            conn.request("GET", "/healthz", headers={"X-Request-Id": "trace-me-42"})
            resp = conn.getresponse()
            resp.read()
            assert resp.getheader("X-Request-Id") == "trace-me-42"
            conn.request("GET", "/healthz")
            resp = conn.getresponse()
            resp.read()
            assert resp.getheader("X-Request-Id", "").startswith("req-")
        finally:
            conn.close()


class TestConcurrencyReconciliation:
    def test_histogram_totals_equal_issued_commands(self, service):
        manager, client = service
        client.create("s1", **CFG)
        n_threads, n_cmds = 4, 5
        errors = []

        def worker():
            local = SessionClient(client.base_url)
            try:
                for _ in range(n_cmds):
                    local.step("s1")
            except Exception as exc:  # noqa: BLE001 - surfaced below
                errors.append(exc)
            finally:
                local.close()

        pool = [threading.Thread(target=worker) for _ in range(n_threads)]
        for t in pool:
            t.start()
        for t in pool:
            t.join()
        assert not errors

        issued = n_threads * n_cmds
        outcomes = _http_outcomes(manager)
        assert outcomes[("step", "200")] == issued
        hist = manager.metrics.get("repro_http_request_seconds")
        assert hist.count("step") == issued
        serve_cmds = manager.metrics.get("repro_serve_commands_total")
        by_labels = dict(serve_cmds.items())
        assert by_labels[("step", "ok")] == issued
        # statusz reads the same registry and must agree.
        status = manager.statusz()
        assert status["commands"]["step"]["count"] == issued
        assert status["commands"]["step"]["by_outcome"]["ok"] == issued
