"""SessionClient unit behaviour: URL safety, keep-alive bookkeeping."""

import threading

import pytest

from repro.serve.client import SessionClient, _path_segment


class TestPathSegments:
    def test_plain_names_pass_through(self):
        for name in ("s1", "user.session-2", "A_b-c.d"):
            assert _path_segment(name) == name

    @pytest.mark.parametrize(
        "name",
        [
            "a/propose",  # unquoted, this silently hits the propose route
            "../escape",
            "a b",
            "name?x=1",
            "sess#frag",
            "ünïcode",
            "",
        ],
    )
    def test_unsafe_names_rejected_client_side(self, name):
        """A name quoting would alter (or an empty one) cannot name a served
        session — reject it before it silently addresses the wrong route."""
        with pytest.raises(ValueError, match="path segment"):
            _path_segment(name)

    def test_client_methods_reject_unsafe_names_before_any_io(self):
        # Port 9 (discard) is never dialed: the name check fires first.
        client = SessionClient("http://127.0.0.1:9")
        for method in (client.info, client.propose, client.decline, client.step,
                       client.score, client.snapshot):
            with pytest.raises(ValueError, match="path segment"):
                method("a/propose")
        with pytest.raises(ValueError, match="path segment"):
            client.submit("a/submit", "tok", 1)


class TestClientConstruction:
    def test_rejects_non_http_urls(self):
        with pytest.raises(ValueError):
            SessionClient("ftp://127.0.0.1:1")
        with pytest.raises(ValueError):
            SessionClient("not-a-url")

    def test_connections_are_per_thread(self):
        client = SessionClient("http://127.0.0.1:9")
        conn_a, fresh_a = client._connection()
        assert fresh_a
        seen = {}

        def other():
            conn, fresh = client._connection()
            seen["conn"], seen["fresh"] = conn, fresh

        thread = threading.Thread(target=other)
        thread.start()
        thread.join()
        assert seen["fresh"] and seen["conn"] is not conn_a
        client.close()
        _, fresh_again = client._connection()
        assert fresh_again  # close dropped this thread's connection
        client.close()
