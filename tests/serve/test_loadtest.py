"""The loadtest harness: record schema gate + an end-to-end multi-client run."""

import copy
import json

import pytest

from repro.serve.loadtest import LoadTestConfig, check_record, decide, run_loadtest

VALID = {
    "benchmark": "serve_latency",
    "schema_version": 2,
    "quick": False,
    "machine": {"platform": "x", "python": "3", "cpu_count": 4},
    "config": {
        "clients": 4,
        "sessions_per_client": 2,
        "iterations": 6,
        "method": "snorkel",
        "dataset": "amazon",
        "scale": "tiny",
        "seed": 0,
    },
    "server": {"spawned": True, "snapshot_every": 4, "max_live": None, "idle_evict_seconds": None},
    "wall_seconds": 3.2,
    "sessions_total": 8,
    "sessions_per_second": 2.5,
    "commands_total": 64,
    "commands_per_second": 20.0,
    "errors": {"total": 0, "by_kind": {}},
    "latency_ms": {
        command: {"n": 8, "mean": 5.0, "p50": 4.0, "p99": 9.0, "max": 9.5}
        for command in ("create", "propose", "submit", "score")
    },
    "server_metrics": {
        "commands": {
            command: {
                "client_count": 8,
                "server_count": 8,
                "lost": 0,
                "p50_ms": 3.5,
                "p99_ms": 8.0,
            }
            for command in ("create", "propose", "submit", "score")
        },
        "lost_commands_total": 0,
        "sessions": {"live": 8},
        "engine": {"phase_seconds": {"select": 0.4}},
    },
    "cold_start": {
        "sessions": 4,
        "wall_seconds": 0.5,
        "sum_touch_seconds": 1.6,
        "parallel_speedup": 3.2,
        "errors": 0,
    },
}


class TestCheckRecord:
    def test_valid_record_passes(self):
        assert check_record(copy.deepcopy(VALID)) == []

    def test_missing_keys_reported(self):
        record = copy.deepcopy(VALID)
        del record["latency_ms"]
        del record["errors"]
        problems = check_record(record)
        assert any("latency_ms" in p for p in problems)
        assert any("errors" in p for p in problems)

    def test_single_client_rejected(self):
        record = copy.deepcopy(VALID)
        record["config"]["clients"] = 1
        assert any("clients" in p for p in check_record(record))

    def test_command_errors_fail_the_gate(self):
        record = copy.deepcopy(VALID)
        record["errors"] = {"total": 3, "by_kind": {"submit:http_500": 3}}
        assert any("error" in p for p in check_record(record))

    def test_percentile_ordering_enforced(self):
        record = copy.deepcopy(VALID)
        record["latency_ms"]["propose"]["p99"] = 1.0  # below p50
        assert any("propose" in p for p in check_record(record))

    def test_missing_required_command_reported(self):
        record = copy.deepcopy(VALID)
        del record["latency_ms"]["submit"]
        assert any("submit" in p for p in check_record(record))

    def test_spawned_record_requires_cold_start(self):
        record = copy.deepcopy(VALID)
        record["cold_start"] = None
        assert any("cold_start" in p for p in check_record(record))
        record["server"]["spawned"] = False  # external target: no cold phase
        assert check_record(record) == []

    def test_spawned_record_requires_server_metrics(self):
        record = copy.deepcopy(VALID)
        record["server_metrics"] = None
        assert any("server_metrics" in p for p in check_record(record))
        record["server"]["spawned"] = False  # external target: scrape optional
        assert check_record(record) == []

    def test_lost_commands_fail_the_gate(self):
        record = copy.deepcopy(VALID)
        record["server_metrics"]["lost_commands_total"] = 2
        record["server_metrics"]["commands"]["propose"]["lost"] = 2
        problems = check_record(record)
        assert any("lost" in p for p in problems)

    def test_server_percentile_ordering_enforced(self):
        record = copy.deepcopy(VALID)
        record["server_metrics"]["commands"]["submit"]["p99_ms"] = 0.5  # < p50
        assert any("submit" in p for p in check_record(record))

    def test_record_is_json_serializable_shape(self):
        json.dumps(VALID)


class TestDecide:
    def test_deterministic_and_duplicate_free(self):
        proposal = {"dev_index": 3, "primitives": ["bb", "aaa", "cc"]}
        used = set()
        first = decide(proposal, used)
        assert first == ("aaa", 1 if len("aaa") % 2 == 0 else -1)
        used.add(first)
        second = decide(proposal, used)
        assert second[0] == "bb"
        assert decide({"dev_index": None, "primitives": []}, set()) is None

    def test_exhausted_primitives_decline(self):
        proposal = {"dev_index": 0, "primitives": ["ab"]}
        assert decide(proposal, {("ab", 1)}) is None


class TestConfigValidation:
    def test_bad_shapes_rejected(self):
        with pytest.raises(ValueError):
            LoadTestConfig(clients=0)
        with pytest.raises(ValueError):
            LoadTestConfig(sessions_per_client=0)
        with pytest.raises(ValueError):
            LoadTestConfig(iterations=0)


class TestEndToEnd:
    def test_multi_client_run_produces_valid_record(self, tmp_path):
        """Two real client threads against a spawned server over real HTTP;
        the record must pass its own schema gate with zero errors."""
        config = LoadTestConfig(
            clients=2, sessions_per_client=1, iterations=3, quick=True
        )
        record = run_loadtest(config, log=lambda *_: None)
        assert check_record(record) == []
        assert record["sessions_total"] == 2
        assert record["errors"]["total"] == 0
        assert record["cold_start"]["sessions"] == 2
        # propose count = clients * sessions * iterations
        assert record["latency_ms"]["propose"]["n"] == 6
