"""SessionManager: isolation, durability, rotation, and restore parity."""

import numpy as np
import pytest

from repro.serve.manager import (
    BadSessionRequest,
    ServeError,
    SessionConflictError,
    SessionExistsError,
    SessionManager,
    UnknownSessionError,
)

CFG_A = dict(method="snorkel", dataset="amazon", scale="tiny", seed=11)
CFG_B = dict(method="seu", dataset="amazon", scale="tiny", seed=23)


def fingerprint(manager: SessionManager, name: str) -> tuple:
    """Everything observable about one session's learning state."""
    info = manager.info(name)
    session = manager._get(name).session
    return (
        info["iteration"],
        tuple((lf["primitive"], lf["label"]) for lf in info["lfs"]),
        manager.score(name)["test_score"],
        tuple(np.asarray(session.soft_labels).ravel().tolist()),
    )


class TestLifecycle:
    def test_create_duplicate_and_unknown(self, tmp_path):
        manager = SessionManager(tmp_path)
        manager.create("s1", **CFG_A)
        with pytest.raises(SessionExistsError):
            manager.create("s1", **CFG_A)
        with pytest.raises(UnknownSessionError):
            manager.info("nope")
        with pytest.raises(BadSessionRequest):
            manager.create("../escape", **CFG_A)
        with pytest.raises(BadSessionRequest):
            manager.create("ok", method="unknown-method")

    def test_non_protocol_method_rejected(self, tmp_path):
        manager = SessionManager(tmp_path)
        with pytest.raises(BadSessionRequest, match="protocol"):
            manager.create("al", method="us", dataset="amazon", scale="tiny")

    def test_bad_lf_keeps_interaction_open(self, tmp_path):
        manager = SessionManager(tmp_path)
        manager.create("s1", **CFG_A)
        proposal = manager.propose("s1")
        with pytest.raises(BadSessionRequest):
            manager.submit("s1", "no-such-primitive", 1)
        session = manager._get("s1").session
        assert session.pending is not None  # retry is possible
        result = manager.submit("s1", sorted(proposal["primitives"])[0], 1)
        assert result["outcome"] == "submitted"

    def test_refit_failure_after_commit_is_not_a_client_error(self, tmp_path, monkeypatch):
        """A post-commit refit failure must not masquerade as a 400.

        The engine clears the pending interaction at its commit point, so
        a refit exception means the LF is durable — report a server-side
        failure (the client must not retry submit) and still count the
        commit toward the snapshot cadence.
        """
        manager = SessionManager(tmp_path, snapshot_every=1)
        manager.create("s1", **CFG_A)
        proposal = manager.propose("s1")
        live = manager._get("s1")
        monkeypatch.setattr(
            live.session, "_refit", lambda: (_ for _ in ()).throw(ValueError("boom"))
        )
        with pytest.raises(ServeError) as err:
            manager.submit("s1", sorted(proposal["primitives"])[0], 1)
        assert err.value.status == 500
        assert "committed" in str(err.value)
        assert live.session.pending is None
        assert live.session.iteration == 1  # the commit landed
        assert live.commits_since_snapshot == 0  # cadence counted it (snapshotted)
        monkeypatch.undo()
        assert manager.step("s1")["iteration"] == 2  # session still serves

    def test_snapshot_with_open_interaction_conflicts(self, tmp_path):
        manager = SessionManager(tmp_path)
        manager.create("s1", **CFG_A)
        manager.propose("s1")
        with pytest.raises(SessionConflictError):
            manager.snapshot("s1")
        manager.decline("s1")
        assert manager.snapshot("s1")["iteration"] == 1


class TestMultiSessionIsolation:
    """Satellite: interleaved sessions == the same sessions run sequentially."""

    def test_interleaved_equals_sequential(self, tmp_path):
        interleaved = SessionManager(tmp_path / "a", snapshot_every=3)
        interleaved.create("s1", **CFG_A)
        interleaved.create("s2", **CFG_B)
        for _ in range(8):  # strict alternation
            interleaved.step("s1")
            interleaved.step("s2")

        sequential = SessionManager(tmp_path / "b", snapshot_every=3)
        sequential.create("s1", **CFG_A)
        for _ in range(8):
            sequential.step("s1")
        sequential.create("s2", **CFG_B)
        for _ in range(8):
            sequential.step("s2")

        assert fingerprint(interleaved, "s1") == fingerprint(sequential, "s1")
        assert fingerprint(interleaved, "s2") == fingerprint(sequential, "s2")

    def test_managed_session_equals_plain_session(self, tmp_path):
        """manager.step drives the same commands as InteractiveMethod.step."""
        from repro.experiments.registry import resolve_factory

        manager = SessionManager(tmp_path, snapshot_every=2)
        manager.create("s1", **CFG_A, user_threshold=0.5)
        for _ in range(6):
            manager.step("s1")

        dataset = manager._dataset(manager._get("s1").meta)
        plain = resolve_factory(CFG_A["method"], CFG_A["dataset"], 0.5)(
            dataset, CFG_A["seed"]
        )
        for _ in range(6):
            plain.step()
        info = manager.info("s1")
        assert info["iteration"] == plain.iteration
        assert [(lf["primitive"], lf["label"]) for lf in info["lfs"]] == [
            (str(lf.primitive), int(lf.label)) for lf in plain.lfs
        ]
        assert manager.score("s1")["test_score"] == plain.test_score()

    def test_phase_timings_are_per_session(self, tmp_path):
        manager = SessionManager(tmp_path)
        manager.create("s1", **CFG_A)
        manager.create("s2", **CFG_B)
        manager.step("s1")
        s1 = manager._get("s1").session
        s2 = manager._get("s2").session
        assert s1.phase_timings is not s2.phase_timings
        assert s1.rng is not s2.rng
        assert s2.phase_timings["select"] == 0.0


class TestDurability:
    def test_restart_restores_and_continues_bit_identically(self, tmp_path):
        """Kill after un-snapshotted commits → replay equals uninterrupted."""
        root = tmp_path / "killed"
        first = SessionManager(root, snapshot_every=2, keep_last=2)
        first.create("s1", **CFG_A)
        for _ in range(7):  # snapshots at 2, 4, 6; commit 7 is lost
            first.step("s1")
        del first  # "SIGKILL": nothing flushed beyond the atomic snapshots

        resumed = SessionManager(root, snapshot_every=2, keep_last=2)
        assert resumed.info("s1")["iteration"] == 6  # latest rotated snapshot
        for _ in range(4):  # replay 7, then 8..10
            resumed.step("s1")

        reference = SessionManager(tmp_path / "ref", snapshot_every=2, keep_last=2)
        reference.create("s1", **CFG_A)
        for _ in range(10):
            reference.step("s1")
        assert fingerprint(resumed, "s1") == fingerprint(reference, "s1")

    def test_rotation_keeps_last_n(self, tmp_path):
        manager = SessionManager(tmp_path, snapshot_every=1, keep_last=3)
        manager.create("s1", **CFG_A)
        for _ in range(8):
            manager.step("s1")
        files = manager._checkpoint_files("s1")
        assert len(files) == 3
        assert [f.name for f in files] == sorted(f.name for f in files)
        assert files[-1].name == "step-00000008.ckpt.npz"

    def test_listing_does_not_restore(self, tmp_path):
        root = tmp_path
        manager = SessionManager(root)
        manager.create("s1", **CFG_A)
        for _ in range(5):
            manager.step("s1")
        fresh = SessionManager(root)
        infos = fresh.sessions()
        assert [i["name"] for i in infos] == ["s1"]
        assert infos[0]["live"] is False
        assert infos[0]["last_snapshot_iteration"] == 5
        assert fresh._live == {}  # listing never deserialized an engine

    def test_multiclass_session_serves_and_restores(self, tmp_path):
        """The protocol is cardinality-generic: topics sessions serve too."""
        manager = SessionManager(tmp_path, snapshot_every=1)
        manager.create(
            "mc", method="snorkel-mc", dataset="topics", scale="tiny", seed=4
        )
        proposal = manager.propose("mc")
        assert proposal["primitives"]
        result = manager.submit("mc", sorted(proposal["primitives"])[0], 0)
        assert result["outcome"] == "submitted" and result["lf"]["label"] == 0
        manager.step("mc")
        fresh = SessionManager(tmp_path, snapshot_every=1)
        assert fresh.info("mc")["iteration"] == 2
        assert fresh.score("mc") == manager.score("mc")

    def test_corrupt_checkpoint_falls_back_to_older(self, tmp_path):
        manager = SessionManager(tmp_path, snapshot_every=1, keep_last=3)
        manager.create("s1", **CFG_A)
        for _ in range(4):
            manager.step("s1")
        files = manager._checkpoint_files("s1")
        files[-1].write_bytes(b"torn garbage")
        fresh = SessionManager(tmp_path, snapshot_every=1, keep_last=3)
        assert fresh.info("s1")["iteration"] == 3  # newest loadable snapshot

    def test_checkpoint_order_survives_padding_rollover(self, tmp_path):
        """Iterations ≥ 10^8 overflow the 8-digit padding: ``step-100000000``
        sorts lexicographically *before* ``step-99999999``, so a filename
        sort would restore the older snapshot as "newest"."""
        import shutil

        manager = SessionManager(tmp_path, snapshot_every=1, keep_last=3)
        manager.create("s1", **CFG_A)
        manager.step("s1")  # snapshot @1
        manager.step("s1")  # snapshot @2
        directory = manager.session_dir("s1")
        # Re-stamp the snapshots as a rollover pair: iteration 99 999 999
        # holds the @1 state, iteration 100 000 000 the (newer) @2 state.
        shutil.move(directory / "step-00000001.ckpt.npz", directory / "step-99999999.ckpt.npz")
        shutil.move(directory / "step-00000002.ckpt.npz", directory / "step-100000000.ckpt.npz")
        (directory / "step-00000000.ckpt.npz").unlink()

        fresh = SessionManager(tmp_path, snapshot_every=1, keep_last=3)
        assert [p.name for p in fresh._checkpoint_files("s1")] == [
            "step-99999999.ckpt.npz",
            "step-100000000.ckpt.npz",
        ]
        # Newest-first restore picks the 10^8 file (the @2 state).
        assert fresh.info("s1")["iteration"] == 2
