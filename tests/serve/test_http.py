"""The JSON/HTTP front end: routing, error mapping, restart behaviour."""

import threading

import pytest

from repro.serve import ServeClientError, SessionClient, SessionManager, make_server

CFG = dict(method="snorkel", dataset="amazon", scale="tiny", seed=5)


@pytest.fixture()
def service(tmp_path):
    manager = SessionManager(tmp_path, snapshot_every=2, keep_last=2)
    server = make_server(manager)
    thread = threading.Thread(target=server.serve_forever, daemon=True)
    thread.start()
    host, port = server.server_address[:2]
    client = SessionClient(f"http://{host}:{port}")
    yield manager, client, tmp_path
    server.shutdown()
    server.server_close()


class TestRoutes:
    def test_health_and_unknown_paths(self, service):
        _, client, _ = service
        assert client.health()["ok"] is True
        with pytest.raises(ServeClientError) as err:
            client._request("GET", "/nothing/here")
        assert err.value.status == 404

    def test_full_interaction_flow(self, service):
        _, client, _ = service
        created = client.create("s1", **CFG)
        assert created["iteration"] == 0 and created["n_checkpoints"] == 1

        proposal = client.propose("s1")
        assert proposal["dev_index"] is not None
        assert proposal["primitives"]
        again = client.propose("s1")  # idempotent across HTTP retries
        assert again["token"] == proposal["token"]

        result = client.submit("s1", sorted(proposal["primitives"])[0], 1)
        assert result["outcome"] == "submitted"
        assert result["iteration"] == 1 and result["n_lfs"] == 1

        proposal = client.propose("s1")
        declined = client.decline("s1")
        assert declined["outcome"] == "declined"
        assert declined["iteration"] == 2
        assert declined["snapshotted"] is True  # snapshot_every=2

        stepped = client.step("s1")
        assert stepped["outcome"] in {"submitted", "declined", "exhausted"}
        score = client.score("s1")
        assert 0.0 <= score["test_score"] <= 1.0
        info = client.info("s1")
        assert info["iteration"] == 3
        assert [s["name"] for s in client.sessions()] == ["s1"]

    def test_error_statuses(self, service):
        _, client, _ = service
        client.create("s1", **CFG)
        with pytest.raises(ServeClientError) as err:
            client.create("s1", **CFG)
        assert err.value.status == 409
        with pytest.raises(ServeClientError) as err:
            client.info("ghost")
        assert err.value.status == 404
        with pytest.raises(ServeClientError) as err:
            client.decline("s1")  # no open interaction
        assert err.value.status == 409
        client.propose("s1")
        with pytest.raises(ServeClientError) as err:
            client.submit("s1", "no-such-primitive-token", 1)
        assert err.value.status == 400
        with pytest.raises(ServeClientError) as err:
            client.snapshot("s1")  # open interaction
        assert err.value.status == 409
        with pytest.raises(ServeClientError) as err:
            client._request("POST", "/sessions", {"name": "x", "bogus": 1})
        assert err.value.status == 400
        with pytest.raises(ServeClientError) as err:
            client._request("POST", "/sessions/s1/unknown-verb")
        assert err.value.status == 404

    def test_keepalive_connection_reused_across_commands(self, service):
        """HTTP/1.1 + Content-Length: one TCP connection serves many commands."""
        _, client, _ = service
        client.create("s1", **CFG)
        conn, fresh = client._connection()
        assert not fresh  # create already opened this thread's connection
        for _ in range(3):
            client.step("s1")
        again, fresh = client._connection()
        assert again is conn and not fresh  # never re-dialed
        client.close()

    def test_disconnect_mid_response_does_not_kill_handler(self, service, capsys):
        """A client that vanishes before reading the response must be
        absorbed — the success-path write raises from the handler thread."""
        import socket
        import struct
        import time

        _, client, _ = service
        client.create("s1", **CFG)
        host, port = client._host, client._port
        for _ in range(3):
            raw = socket.create_connection((host, port))
            # RST on close (SO_LINGER 0): the handler's response write
            # raises ConnectionResetError instead of buffering into a FIN.
            raw.setsockopt(
                socket.SOL_SOCKET, socket.SO_LINGER, struct.pack("ii", 1, 0)
            )
            raw.sendall(b"GET /sessions HTTP/1.1\r\nHost: x\r\n\r\n")
            raw.close()
        time.sleep(0.3)  # let the handler threads hit the dead sockets
        assert client.sessions()  # server still answers
        assert "Traceback" not in capsys.readouterr().err

    def test_unread_body_is_drained_for_keepalive(self, service):
        """An errored POST whose body was never read must not leave the
        body bytes on the socket to corrupt the next keep-alive request."""
        _, client, _ = service
        with pytest.raises(ServeClientError) as err:
            client._request("POST", "/sessions/ghost/unknown-verb", {"pad": "x" * 256})
        assert err.value.status == 404
        # Same connection, next command parses cleanly.
        assert client.health()["ok"] is True

    def test_restart_resumes_over_http(self, service, tmp_path):
        manager, client, root = service
        client.create("s1", **CFG)
        for _ in range(4):
            client.step("s1")
        # a second service over the same root (the restarted server)
        manager2 = SessionManager(root, snapshot_every=2, keep_last=2)
        server2 = make_server(manager2)
        thread = threading.Thread(target=server2.serve_forever, daemon=True)
        thread.start()
        try:
            host, port = server2.server_address[:2]
            client2 = SessionClient(f"http://{host}:{port}")
            assert client2.info("s1")["iteration"] == 4
            assert client2.step("s1")["iteration"] == 5
        finally:
            server2.shutdown()
            server2.server_close()
