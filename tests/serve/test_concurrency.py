"""SessionManager under real concurrency: latches, eviction, listing.

The serve path's concurrency mechanisms, each pinned by a hammer:

* per-name loading latches — a cold-start storm of K distinct sessions
  restores them in *parallel* (wall clock well under the serial sum),
  while a storm on one name restores it exactly once;
* LRU/idle eviction — snapshot-before-evict, transparent bit-identical
  lazy restore on the next touch, and refusal to evict a session with an
  open interaction (its RNG already advanced past the last snapshot);
* ``sessions()`` — safe against concurrent creates/evictions mutating
  the live map mid-listing.
"""

import threading
import time

import pytest

from repro.serve.manager import (
    ServeError,
    SessionManager,
    _LiveSession,
)

CFG = dict(method="snorkel", dataset="amazon", scale="tiny", seed=7)


def fingerprint(manager: SessionManager, name: str) -> tuple:
    info = manager.info(name)
    return (
        info["iteration"],
        tuple((lf["primitive"], lf["label"]) for lf in info["lfs"]),
        manager.score(name)["test_score"],
    )


def make_store(root, n_sessions, steps=2) -> list[str]:
    """A root with ``n_sessions`` snapshotted sessions, then forget them."""
    seeder = SessionManager(root, snapshot_every=1)
    names = [f"s{i}" for i in range(n_sessions)]
    for name in names:
        seeder.create(name, **CFG)
        for _ in range(steps):
            seeder.step(name)
    return names


class _SlowRestore:
    """Wrap ``manager._restore`` with a delay + concurrency bookkeeping.

    The delay sleeps (releasing the GIL, like real checkpoint I/O), so
    genuinely parallel restores overlap even on one core; the counters
    record per-name call totals and the high-water mark of simultaneous
    restores.
    """

    def __init__(self, manager: SessionManager, delay: float) -> None:
        self._inner = manager._restore
        self.delay = delay
        self.lock = threading.Lock()
        self.calls: dict[str, int] = {}
        self.active = 0
        self.max_active = 0

    def __call__(self, name: str) -> _LiveSession:
        with self.lock:
            self.calls[name] = self.calls.get(name, 0) + 1
            self.active += 1
            self.max_active = max(self.max_active, self.active)
        try:
            time.sleep(self.delay)
            return self._inner(name)
        finally:
            with self.lock:
                self.active -= 1


class TestLoadingLatches:
    def test_cold_start_storm_restores_in_parallel(self, tmp_path):
        """K distinct first touches: wall clock ≪ the serial restore sum."""
        n, delay = 6, 0.3
        names = make_store(tmp_path, n)
        manager = SessionManager(tmp_path)
        slow = _SlowRestore(manager, delay)
        manager._restore = slow

        errors: list[Exception] = []

        def touch(name: str) -> None:
            try:
                manager.info(name)
            except Exception as exc:  # pragma: no cover - failure detail
                errors.append(exc)

        threads = [threading.Thread(target=touch, args=(name,)) for name in names]
        t0 = time.perf_counter()
        for thread in threads:
            thread.start()
        for thread in threads:
            thread.join()
        wall = time.perf_counter() - t0

        assert errors == []
        assert all(slow.calls[name] == 1 for name in names)  # never double-loaded
        assert slow.max_active >= 2  # restores genuinely overlapped
        # Serial behaviour (restores under the manager lock) would cost at
        # least n*delay; parallel latched restores finish in ~delay.
        assert wall < n * delay * 0.7, f"wall {wall:.2f}s vs serial floor {n * delay:.2f}s"

    def test_same_name_storm_loads_once_and_all_wait(self, tmp_path):
        make_store(tmp_path, 1)
        manager = SessionManager(tmp_path)
        slow = _SlowRestore(manager, 0.2)
        manager._restore = slow

        results: list[int] = []
        errors: list[Exception] = []

        def touch() -> None:
            try:
                results.append(manager.info("s0")["iteration"])
            except Exception as exc:  # pragma: no cover
                errors.append(exc)

        threads = [threading.Thread(target=touch) for _ in range(8)]
        for thread in threads:
            thread.start()
        for thread in threads:
            thread.join()

        assert errors == []
        assert slow.calls == {"s0": 1}  # one restore, seven latch waiters
        assert len(set(results)) == 1

    def test_failed_restore_propagates_to_waiters_and_is_not_sticky(self, tmp_path):
        names = make_store(tmp_path, 1)
        manager = SessionManager(tmp_path)
        inner = manager._restore
        fail_once = {"armed": True}
        entered = threading.Event()
        release = threading.Event()

        def flaky(name: str):
            entered.set()
            release.wait(5.0)
            if fail_once["armed"]:
                fail_once["armed"] = False
                raise ServeError("transient restore failure")
            return inner(name)

        manager._restore = flaky
        outcomes: list[object] = []

        def touch() -> None:
            try:
                outcomes.append(manager.info(names[0])["iteration"])
            except ServeError as exc:
                outcomes.append(exc)

        threads = [threading.Thread(target=touch) for _ in range(4)]
        for thread in threads:
            thread.start()
        entered.wait(5.0)
        release.set()
        for thread in threads:
            thread.join()

        # Every stormer saw the one failure — nobody half-loaded a session.
        assert all(isinstance(o, ServeError) for o in outcomes)
        # The failure is not sticky: the latch was unregistered, so the
        # next touch retries the restore and succeeds.
        assert manager.info(names[0])["iteration"] == 2

    def test_concurrent_restores_share_one_dataset_load(self, tmp_path):
        names = make_store(tmp_path, 4)
        manager = SessionManager(tmp_path)
        threads = [
            threading.Thread(target=manager.info, args=(name,)) for name in names
        ]
        for thread in threads:
            thread.start()
        for thread in threads:
            thread.join()
        assert len(manager._datasets) == 1  # one cache entry, no duplicates


class TestEviction:
    def test_lru_eviction_over_max_live(self, tmp_path):
        manager = SessionManager(tmp_path, snapshot_every=1, max_live=2)
        for i in range(4):
            manager.create(f"s{i}", **{**CFG, "seed": i})
        with manager._lock:
            live_names = set(manager._live)
        assert len(live_names) <= 2
        assert "s3" in live_names  # the newest touch survives

    def test_eviction_snapshots_dirty_sessions_first(self, tmp_path):
        # snapshot_every=100: commits never hit the periodic cadence, so
        # only eviction itself can have written the pre-evict snapshot.
        manager = SessionManager(tmp_path, snapshot_every=100, max_live=1)
        manager.create("s0", **CFG)
        for _ in range(3):
            manager.step("s0")
        manager.create("s1", **CFG)  # pushes s0 over the cap
        with manager._lock:
            assert "s0" not in manager._live
        files = manager._checkpoint_files("s0")
        assert files and files[-1].name == "step-00000003.ckpt.npz"

    def test_evicted_session_continues_bit_identically(self, tmp_path):
        manager = SessionManager(tmp_path / "evicting", snapshot_every=100, max_live=1)
        manager.create("s0", **CFG)
        for _ in range(3):
            manager.step("s0")
        manager.create("other", **CFG)  # evicts s0 (snapshot-first)
        with manager._lock:
            assert "s0" not in manager._live
        for _ in range(3):  # transparent lazy restore, then continue
            manager.step("s0")

        reference = SessionManager(tmp_path / "reference", snapshot_every=100)
        reference.create("s0", **CFG)
        for _ in range(6):
            reference.step("s0")
        assert fingerprint(manager, "s0") == fingerprint(reference, "s0")

    def test_pending_session_is_never_evicted(self, tmp_path):
        manager = SessionManager(tmp_path, snapshot_every=1, max_live=1)
        manager.create("s0", **CFG)
        manager.propose("s0")  # open interaction: eviction must refuse
        manager.create("s1", **CFG)
        manager.create("s2", **CFG)
        with manager._lock:
            # s0 is pinned by its open interaction (cap exceeded rather
            # than evicted); s1 was the cap's legitimate LRU victim, and
            # s2 — the hottest session — is never cap-evicted.
            assert set(manager._live) == {"s0", "s2"}
        result = manager.submit(
            "s0", sorted(manager.propose("s0")["primitives"])[0], 1
        )
        assert result["outcome"] == "submitted"
        with manager._lock:
            manager._live["s0"].last_touch = 0.0  # oldest again
        assert manager.evict() == ["s0"]  # interaction closed: now evictable
        with manager._lock:
            assert set(manager._live) == {"s2"}

    def test_idle_eviction_by_age(self, tmp_path):
        manager = SessionManager(tmp_path, snapshot_every=1, idle_evict_seconds=60.0)
        manager.create("s0", **CFG)
        manager.create("s1", **CFG)
        manager.step("s1")
        with manager._lock:
            idle = manager._live["s0"]
        idle.last_touch -= 120.0  # age s0 past the idle bound
        evicted = manager.evict()
        assert evicted == ["s0"]
        with manager._lock:
            assert set(manager._live) == {"s1"}
        assert manager.info("s0")["iteration"] == 0  # lazy restore still works

    def test_command_racing_eviction_retries_on_fresh_restore(self, tmp_path):
        """A command holding a stale evicted object must not mutate it."""
        manager = SessionManager(tmp_path, snapshot_every=1)
        manager.create("s0", **CFG)
        stale = manager._get("s0")
        # Simulate the eviction sweep winning the race between the
        # command's _get and its lock acquisition.
        with stale.lock:
            with manager._lock:
                del manager._live["s0"]
        result = manager.step("s0")  # retries via _command, restores fresh
        assert result["iteration"] == 1
        with manager._lock:
            assert manager._live["s0"] is not stale
        assert stale.session.iteration == 0  # the orphan was never driven


class TestListingHammer:
    def test_sessions_listing_survives_concurrent_mutation(self, tmp_path):
        """set(self._live) without the lock dies with 'dict changed size'."""
        manager = SessionManager(tmp_path, snapshot_every=1, max_live=4)
        manager.create("seed0", **CFG)
        stop = threading.Event()
        errors: list[Exception] = []

        def lister() -> None:
            while not stop.is_set():
                try:
                    manager.sessions()
                except Exception as exc:  # pragma: no cover - failure detail
                    errors.append(exc)
                    return

        threads = [threading.Thread(target=lister) for _ in range(2)]
        for thread in threads:
            thread.start()
        try:
            # Creates + cap-driven evictions churn the live map while the
            # listers iterate it.
            for i in range(30):
                manager.create(f"churn{i}", **CFG)
        finally:
            stop.set()
            for thread in threads:
                thread.join()
        assert errors == []

    def test_concurrent_steps_on_distinct_sessions(self, tmp_path):
        """Commands on different sessions proceed in parallel, isolated."""
        manager = SessionManager(tmp_path / "hammer", snapshot_every=2)
        names = [f"s{i}" for i in range(3)]
        for i, name in enumerate(names):
            manager.create(name, **{**CFG, "seed": i})
        errors: list[Exception] = []

        def drive(name: str) -> None:
            try:
                for _ in range(4):
                    manager.step(name)
            except Exception as exc:  # pragma: no cover
                errors.append(exc)

        threads = [threading.Thread(target=drive, args=(name,)) for name in names]
        for thread in threads:
            thread.start()
        for thread in threads:
            thread.join()
        assert errors == []

        reference = SessionManager(tmp_path / "reference", snapshot_every=2)
        for i, name in enumerate(names):
            reference.create(name, **{**CFG, "seed": i})
            for _ in range(4):
                reference.step(name)
        for name in names:
            assert fingerprint(manager, name) == fingerprint(reference, name)


class TestEvictionValidation:
    def test_bad_policy_values_rejected(self, tmp_path):
        with pytest.raises(ValueError):
            SessionManager(tmp_path, max_live=0)
        with pytest.raises(ValueError):
            SessionManager(tmp_path, idle_evict_seconds=0)

    def test_evict_noop_without_policy(self, tmp_path):
        manager = SessionManager(tmp_path)
        manager.create("s0", **CFG)
        assert manager.evict() == []
        with manager._lock:
            assert "s0" in manager._live
