"""Tests for the interactive baseline methods (US, BALD, IWS-LSE, AW, ImplyLoss)."""

import numpy as np
import pytest

from repro.interactive.active_weasul import ActiveWeaSuLMethod
from repro.interactive.implyloss_session import ImplyLossSession
from repro.interactive.iws import IWSLSEMethod
from repro.interactive.simulated_user import SimulatedUser
from repro.interactive.uncertainty import BALD, UncertaintySampling


class TestUncertaintySampling:
    def test_learns_from_queries(self, tiny_dataset):
        method = UncertaintySampling(tiny_dataset, seed=0)
        for _ in range(25):
            method.step()
        assert len(method.labeled_indices) == 25
        assert method.test_score() >= 0.5

    def test_queries_are_unique(self, tiny_dataset):
        method = UncertaintySampling(tiny_dataset, seed=1)
        for _ in range(15):
            method.step()
        assert len(set(method.labeled_indices)) == 15

    def test_labels_match_ground_truth(self, tiny_dataset):
        method = UncertaintySampling(tiny_dataset, seed=2)
        for _ in range(10):
            method.step()
        for idx, label in zip(method.labeled_indices, method.labels):
            assert label == tiny_dataset.train.y[idx]

    def test_prior_prediction_before_any_model(self, tiny_dataset):
        method = UncertaintySampling(tiny_dataset, seed=3)
        preds = method.predict_test()
        assert len(set(preds.tolist())) == 1


class TestBALD:
    def test_runs_and_scores(self, tiny_dataset):
        method = BALD(tiny_dataset, committee_size=4, seed=0)
        for _ in range(20):
            method.step()
        assert method.test_score() > 0.5

    def test_committee_built_after_both_classes(self, tiny_dataset):
        method = BALD(tiny_dataset, committee_size=4, seed=1)
        for _ in range(15):
            method.step()
        assert len(method._committee) >= 2

    def test_invalid_committee(self, tiny_dataset):
        with pytest.raises(ValueError):
            BALD(tiny_dataset, committee_size=1)


class TestIWSLSE:
    def test_candidates_built(self, tiny_dataset):
        method = IWSLSEMethod(tiny_dataset, seed=0)
        assert len(method.candidate_lfs) > 10
        assert method.candidate_features.shape[0] == len(method.candidate_lfs)

    def test_queries_accumulate_answers(self, tiny_dataset):
        method = IWSLSEMethod(tiny_dataset, seed=0)
        for _ in range(12):
            method.step()
        assert len(method.queried) == 12
        assert len(method.answers) == 12
        assert len(set(method.queried)) == 12

    def test_oracle_answers_match_truth(self, tiny_dataset):
        method = IWSLSEMethod(tiny_dataset, seed=1)
        for _ in range(10):
            method.step()
        for q, a in zip(method.queried, method.answers):
            assert a == bool(method.candidate_truths[q])

    def test_pipeline_improves_over_prior(self, tiny_dataset):
        method = IWSLSEMethod(tiny_dataset, seed=2)
        for _ in range(25):
            method.step()
        # 30-example tiny test split: smoke-level bound only.
        assert method.test_score() >= 0.35
        assert method._fitted

    def test_current_lf_set_contains_answered_useful(self, tiny_dataset):
        method = IWSLSEMethod(tiny_dataset, seed=3)
        for _ in range(15):
            method.step()
        chosen = {(lf.primitive_id, lf.label) for lf in method.current_lf_set()}
        for q, a in zip(method.queried, method.answers):
            if a:
                lf = method.candidate_lfs[q]
                assert (lf.primitive_id, lf.label) in chosen


class TestActiveWeaSuL:
    def test_warmup_then_hand_labels(self, tiny_dataset):
        user = SimulatedUser(tiny_dataset, seed=0)
        method = ActiveWeaSuLMethod(tiny_dataset, user, warmup_iterations=5, seed=0)
        for _ in range(12):
            method.step()
        assert len(method.session.lfs) <= 5
        assert len(method.labeled) == 7

    def test_hand_labels_are_correct(self, tiny_dataset):
        user = SimulatedUser(tiny_dataset, seed=1)
        method = ActiveWeaSuLMethod(tiny_dataset, user, warmup_iterations=3, seed=1)
        for _ in range(10):
            method.step()
        for idx, label in method.labeled.items():
            assert label == tiny_dataset.train.y[idx]

    def test_scores_after_queries(self, tiny_dataset):
        user = SimulatedUser(tiny_dataset, seed=2)
        method = ActiveWeaSuLMethod(tiny_dataset, user, warmup_iterations=5, seed=2)
        for _ in range(20):
            method.step()
        assert method.test_score() > 0.5

    def test_invalid_warmup(self, tiny_dataset):
        user = SimulatedUser(tiny_dataset, seed=0)
        with pytest.raises(ValueError):
            ActiveWeaSuLMethod(tiny_dataset, user, warmup_iterations=0)


class TestImplyLossSession:
    def test_runs_and_uses_joint_model(self, tiny_dataset):
        user = SimulatedUser(tiny_dataset, seed=0)
        session = ImplyLossSession(tiny_dataset, user, n_epochs=40, seed=0)
        session.run(8)
        score = session.test_score()  # triggers the lazy joint-model fit
        assert session.imply_model_ is not None
        assert 0.0 <= score <= 1.0

    def test_proba_matches_prior_before_fit(self, tiny_dataset):
        user = SimulatedUser(tiny_dataset, seed=1)
        session = ImplyLossSession(tiny_dataset, user, n_epochs=10, seed=1)
        np.testing.assert_allclose(
            session.predict_proba_test(), tiny_dataset.label_prior
        )

    def test_exemplars_tracked(self, tiny_dataset):
        user = SimulatedUser(tiny_dataset, seed=2)
        session = ImplyLossSession(tiny_dataset, user, n_epochs=20, seed=2)
        session.run(6)
        assert len(session.lineage.dev_indices) == len(session.lfs)
