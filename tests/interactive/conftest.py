"""Shared fixtures for interactive tests."""

import pytest

from repro.data import load_dataset


@pytest.fixture(scope="session")
def tiny_dataset():
    return load_dataset("amazon", scale="tiny", seed=0)


@pytest.fixture(scope="session")
def tiny_sms():
    return load_dataset("sms", scale="tiny", seed=0)
