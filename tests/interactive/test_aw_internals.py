"""Tests for Active WeaSuL's maxKL internals and IWS acquisition details."""

import numpy as np

from repro.interactive.active_weasul import ActiveWeaSuLMethod
from repro.interactive.iws import IWSLSEMethod
from repro.interactive.simulated_user import SimulatedUser


class TestMaxKLInternals:
    def _method(self, dataset, seed=0):
        user = SimulatedUser(dataset, seed=seed)
        return ActiveWeaSuLMethod(dataset, user, warmup_iterations=3, seed=seed)

    def test_bucket_keys_group_identical_vote_rows(self, tiny_dataset):
        method = self._method(tiny_dataset)
        L = np.array([[1, 0], [1, 0], [0, -1]], dtype=np.int8)
        keys = method._bucket_keys(L)
        assert keys[0] == keys[1]
        assert keys[0] != keys[2]

    def test_unlabeled_bucket_scored_by_entropy(self, tiny_dataset):
        method = self._method(tiny_dataset)
        keys = ["a", "a", "b", "b"]
        posterior = np.array([0.5, 0.5, 0.99, 0.99])
        scores = method._bucket_scores(keys, posterior)
        # bucket "a" (max entropy) must outrank bucket "b" (decided)
        assert scores["a"] > scores["b"]

    def test_labeled_bucket_scored_by_kl(self, tiny_dataset):
        method = self._method(tiny_dataset)
        method.labeled = {0: 1, 1: 1}
        keys = ["a", "a", "b", "b"]
        # model says bucket "a" is negative, but both hand labels are +1
        posterior = np.array([0.1, 0.1, 0.5, 0.5])
        scores = method._bucket_scores(keys, posterior)
        assert scores["a"] > 0.1  # strong disagreement => large KL

    def test_augmented_matrix_adds_expert_column(self, tiny_dataset):
        method = self._method(tiny_dataset)
        method.labeled = {0: 1, 2: -1}
        L = np.zeros((4, 1), dtype=np.int8)
        augmented = method._augmented_matrix(L)
        assert augmented.shape == (4, 2)
        np.testing.assert_array_equal(augmented[:, 1], [1, 0, -1, 0])

    def test_hand_labels_override_soft_labels(self, tiny_dataset):
        method = self._method(tiny_dataset, seed=4)
        for _ in range(10):
            method.step()
        assert method.labeled, "expected hand labels after warmup"
        # refit and confirm overrides were applied to the training targets
        L = method.session.L_train
        soft = method._label_model_posterior(L)
        for idx, label in method.labeled.items():
            target = 1.0 if label == 1 else 0.0
            soft[idx] = target  # the method does the same before training
        assert True  # reaching here without shape errors is the contract


class TestIWSInternals:
    def test_candidate_truths_match_threshold(self, tiny_dataset):
        method = IWSLSEMethod(tiny_dataset, usefulness_threshold=0.5, seed=0)
        B, y = tiny_dataset.train.B, tiny_dataset.train.y
        for i in np.random.default_rng(0).choice(len(method.candidate_lfs), 20):
            lf = method.candidate_lfs[int(i)]
            col = np.asarray(B[:, lf.primitive_id].todense()).ravel() > 0
            acc = (y[col] == lf.label).mean()
            assert bool(method.candidate_truths[int(i)]) == bool(acc > 0.5)

    def test_straddle_prefers_uncertain_near_level(self, tiny_dataset):
        method = IWSLSEMethod(tiny_dataset, seed=1)
        # synthetic ensemble posterior: candidate 0 certain, candidate 1 at
        # the level set with high variance
        mean = np.array([0.95, 0.52])
        std = np.array([0.01, 0.30])
        straddle = method.straddle_kappa * std - np.abs(mean - 0.5)
        assert straddle[1] > straddle[0]

    def test_features_include_label_indicator(self, tiny_dataset):
        method = IWSLSEMethod(tiny_dataset, seed=2)
        labels = {lf.label for lf in method.candidate_lfs}
        assert labels == {-1, 1}
        # last feature column is the LF's output label
        feature_labels = set(np.unique(method.candidate_features[:, -1]))
        assert feature_labels == {-1.0, 1.0}

    def test_pool_capped(self, tiny_dataset):
        method = IWSLSEMethod(tiny_dataset, max_candidates=50, seed=3)
        assert len(method.candidate_lfs) <= 50
