"""Tests for the oracle and noisy simulated users."""

import numpy as np
import pytest

from repro.core.lf import LFFamily
from repro.core.selection import SessionState
from repro.interactive.simulated_user import NoisyUser, SimulatedUser, sample_user_cohort
from repro.labelmodel.base import posterior_entropy
from repro.labelmodel.matrix import apply_lfs, lf_accuracies


def make_state(dataset, lfs=()):
    n = dataset.train.n
    prior = dataset.label_prior
    soft = np.full(n, prior)
    return SessionState(
        dataset=dataset,
        family=LFFamily(dataset.primitive_names, dataset.train.B),
        iteration=0,
        lfs=list(lfs),
        L_train=np.zeros((n, len(lfs)), dtype=np.int8),
        soft_labels=soft,
        entropies=posterior_entropy(soft),
        proxy_labels=np.ones(n, dtype=int),
        proxy_proba=np.full(n, prior),
        selected=set(),
        rng=np.random.default_rng(0),
    )


class TestSimulatedUser:
    def test_lf_label_matches_ground_truth(self, tiny_dataset):
        user = SimulatedUser(tiny_dataset, seed=0)
        state = make_state(tiny_dataset)
        for dev in range(0, 40, 4):
            lf = user.create_lf(dev, state)
            if lf is not None:
                assert lf.label == tiny_dataset.train.y[dev]

    def test_created_lfs_pass_accuracy_threshold(self, tiny_dataset):
        threshold = 0.6
        user = SimulatedUser(tiny_dataset, accuracy_threshold=threshold, seed=0)
        state = make_state(tiny_dataset)
        lfs = []
        for dev in range(60):
            lf = user.create_lf(dev, state)
            if lf is not None:
                lfs.append(lf)
        assert lfs
        L = apply_lfs(lfs, tiny_dataset.train.B)
        accs = lf_accuracies(L, tiny_dataset.train.y)
        assert np.nanmin(accs) >= threshold - 1e-9

    def test_primitive_comes_from_shown_example(self, tiny_dataset):
        user = SimulatedUser(tiny_dataset, seed=1)
        state = make_state(tiny_dataset)
        family = state.family
        for dev in range(30):
            lf = user.create_lf(dev, state)
            if lf is not None:
                assert lf.primitive_id in family.primitives_in(dev)

    def test_never_duplicates_existing_lf(self, tiny_dataset):
        user = SimulatedUser(tiny_dataset, seed=2)
        state = make_state(tiny_dataset)
        seen = set()
        for dev in range(80):
            lf = user.create_lf(dev, state)
            if lf is not None:
                key = (lf.primitive_id, lf.label)
                assert key not in seen
                seen.add(key)
                state.lfs.append(lf)

    def test_high_threshold_yields_fewer_lfs(self, tiny_dataset):
        lenient = SimulatedUser(tiny_dataset, accuracy_threshold=0.5, seed=3)
        strict = SimulatedUser(tiny_dataset, accuracy_threshold=0.95, seed=3)
        state_a = make_state(tiny_dataset)
        state_b = make_state(tiny_dataset)
        n_lenient = sum(
            lenient.create_lf(i, state_a) is not None for i in range(50)
        )
        n_strict = sum(strict.create_lf(i, state_b) is not None for i in range(50))
        assert n_strict <= n_lenient

    def test_lexicon_preference(self, tiny_dataset):
        user = SimulatedUser(tiny_dataset, use_lexicon=True, seed=4)
        state = make_state(tiny_dataset)
        lexicon_ids = set(user._lexicon_labels)
        hits = total = 0
        for dev in range(100):
            lf = user.create_lf(dev, state)
            if lf is not None:
                total += 1
                hits += lf.primitive_id in lexicon_ids
                state.lfs.append(lf)
        assert total > 5
        assert hits / total > 0.5

    def test_invalid_threshold(self, tiny_dataset):
        with pytest.raises(ValueError):
            SimulatedUser(tiny_dataset, accuracy_threshold=1.5)

    def test_invalid_min_coverage(self, tiny_dataset):
        with pytest.raises(ValueError):
            SimulatedUser(tiny_dataset, min_coverage=0)


class TestNoisyUser:
    def test_mislabel_rate_flips_labels(self, tiny_dataset):
        user = NoisyUser(tiny_dataset, mislabel_rate=1.0, judgment_noise=0.0, seed=0)
        state = make_state(tiny_dataset)
        flips = matches = 0
        for dev in range(60):
            lf = user.create_lf(dev, state)
            if lf is not None:
                if lf.label == -tiny_dataset.train.y[dev]:
                    flips += 1
                else:
                    matches += 1
        assert flips > 0

    def test_zero_noise_behaves_like_oracle(self, tiny_dataset):
        noisy = NoisyUser(
            tiny_dataset, mislabel_rate=0.0, judgment_noise=0.0,
            lexicon_adherence=1.0, seed=7,
        )
        state = make_state(tiny_dataset)
        for dev in range(30):
            lf = noisy.create_lf(dev, state)
            if lf is not None:
                assert lf.label == tiny_dataset.train.y[dev]

    def test_invalid_rates(self, tiny_dataset):
        with pytest.raises(ValueError):
            NoisyUser(tiny_dataset, mislabel_rate=2.0)
        with pytest.raises(ValueError):
            NoisyUser(tiny_dataset, judgment_noise=-0.5)


class TestCohort:
    def test_cohort_size_and_heterogeneity(self, tiny_dataset):
        cohort = sample_user_cohort(tiny_dataset, 8, seed=0)
        assert len(cohort) == 8
        thresholds = {round(u.accuracy_threshold, 6) for u in cohort}
        assert len(thresholds) > 1

    def test_cohort_deterministic(self, tiny_dataset):
        a = sample_user_cohort(tiny_dataset, 4, seed=1)
        b = sample_user_cohort(tiny_dataset, 4, seed=1)
        assert [u.accuracy_threshold for u in a] == [u.accuracy_threshold for u in b]

    def test_invalid_count(self, tiny_dataset):
        with pytest.raises(ValueError):
            sample_user_cohort(tiny_dataset, 0)
