"""Tests for the baseline selectors (Random/Abstain/Disagree)."""

import numpy as np
import pytest

from repro.core.lf import LFFamily, PrimitiveLF
from repro.core.selection import SessionState
from repro.interactive.basic_selectors import (
    AbstainSelector,
    DisagreeSelector,
    RandomSelector,
    make_basic_selector,
)
from repro.labelmodel.base import posterior_entropy


def make_state(dataset, L=None, lfs=()):
    n = dataset.train.n
    prior = dataset.label_prior
    soft = np.full(n, prior)
    if L is None:
        L = np.zeros((n, len(lfs)), dtype=np.int8)
    return SessionState(
        dataset=dataset,
        family=LFFamily(dataset.primitive_names, dataset.train.B),
        iteration=0,
        lfs=list(lfs),
        L_train=L,
        soft_labels=soft,
        entropies=posterior_entropy(soft),
        proxy_labels=np.ones(n, dtype=int),
        proxy_proba=np.full(n, prior),
        selected=set(),
        rng=np.random.default_rng(0),
    )


class TestRandomSelector:
    def test_selects_eligible(self, tiny_dataset):
        state = make_state(tiny_dataset)
        idx = RandomSelector().select(state)
        assert state.candidate_mask()[idx]

    def test_respects_exclusions(self, tiny_dataset):
        state = make_state(tiny_dataset)
        state.selected = set(range(state.n_train)) - {17}
        mask = state.candidate_mask()
        if mask[17]:
            assert RandomSelector().select(state) == 17

    def test_none_when_exhausted(self, tiny_dataset):
        state = make_state(tiny_dataset)
        state.selected = set(range(state.n_train))
        assert RandomSelector().select(state) is None


class TestAbstainSelector:
    def test_targets_most_abstained_example(self, tiny_dataset):
        n = tiny_dataset.train.n
        L = np.ones((n, 3), dtype=np.int8)
        L[5] = 0  # all three LFs abstain on example 5
        state = make_state(tiny_dataset, L=L, lfs=[PrimitiveLF(0, "a", 1)] * 3)
        if state.candidate_mask()[5]:
            assert AbstainSelector().select(state) == 5

    def test_falls_back_to_random_without_lfs(self, tiny_dataset):
        state = make_state(tiny_dataset)
        assert AbstainSelector().select(state) is not None


class TestDisagreeSelector:
    def test_targets_conflicted_example(self, tiny_dataset):
        n = tiny_dataset.train.n
        L = np.zeros((n, 2), dtype=np.int8)
        L[:, 0] = 1
        L[9, 1] = -1  # only example 9 has a conflict
        state = make_state(tiny_dataset, L=L, lfs=[PrimitiveLF(0, "a", 1)] * 2)
        if state.candidate_mask()[9]:
            assert DisagreeSelector().select(state) == 9

    def test_falls_back_to_random_without_conflicts(self, tiny_dataset):
        n = tiny_dataset.train.n
        L = np.ones((n, 2), dtype=np.int8)  # no conflicts anywhere
        state = make_state(tiny_dataset, L=L, lfs=[PrimitiveLF(0, "a", 1)] * 2)
        assert DisagreeSelector().select(state) is not None


class TestRegistry:
    def test_names(self):
        assert isinstance(make_basic_selector("random"), RandomSelector)
        assert isinstance(make_basic_selector("abstain"), AbstainSelector)
        assert isinstance(make_basic_selector("disagree"), DisagreeSelector)

    def test_unknown(self):
        with pytest.raises(ValueError):
            make_basic_selector("seu")  # seu is not a *basic* selector
