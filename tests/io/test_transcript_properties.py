"""Property-based tests: arbitrary transcripts survive the JSON round-trip."""

import json

from hypothesis import given, settings
from hypothesis import strategies as st

from repro.core.lf import PrimitiveLF
from repro.io import SessionTranscript, TranscriptEntry
from repro.multiclass.lf import MultiClassLF

_tokens = st.text(
    alphabet=st.characters(whitelist_categories=("Ll", "Lu", "Nd")), min_size=1, max_size=12
)

_binary_lfs = st.builds(
    PrimitiveLF,
    primitive_id=st.integers(0, 10_000),
    primitive=_tokens,
    label=st.sampled_from([-1, 1]),
)

_mc_lfs = st.builds(
    MultiClassLF,
    primitive_id=st.integers(0, 10_000),
    primitive=_tokens,
    label=st.integers(0, 9),
)


@st.composite
def transcripts(draw):
    lf_strategy = draw(st.sampled_from([_binary_lfs, _mc_lfs]))
    n = draw(st.integers(0, 12))
    iterations = sorted(
        draw(
            st.lists(
                st.integers(0, 500), min_size=n, max_size=n, unique=True
            )
        )
    )
    entries = [
        TranscriptEntry(
            iteration=it,
            dev_index=draw(st.integers(0, 10_000)),
            lf=draw(lf_strategy),
        )
        for it in iterations
    ]
    metadata = draw(
        st.dictionaries(_tokens, st.one_of(st.integers(), st.floats(allow_nan=False), _tokens), max_size=4)
    )
    return SessionTranscript(dataset_name=draw(_tokens), entries=entries, metadata=metadata)


class TestRoundTripProperties:
    @given(t=transcripts())
    @settings(max_examples=60, deadline=None)
    def test_dict_round_trip_identity(self, t):
        restored = SessionTranscript.from_dict(t.to_dict())
        assert restored.dataset_name == t.dataset_name
        assert restored.entries == t.entries
        assert restored.metadata == t.metadata

    @given(t=transcripts())
    @settings(max_examples=30, deadline=None)
    def test_serialized_form_is_json(self, t):
        text = json.dumps(t.to_dict())
        assert SessionTranscript.from_dict(json.loads(text)).entries == t.entries

    @given(t=transcripts())
    @settings(max_examples=30, deadline=None)
    def test_lf_types_preserved(self, t):
        restored = SessionTranscript.from_dict(t.to_dict())
        for original, loaded in zip(t.entries, restored.entries):
            assert type(original.lf) is type(loaded.lf)
