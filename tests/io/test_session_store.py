"""Tests for session transcripts: round-trip, replay equivalence, guards."""

import json

import pytest

from repro.core.lf import PrimitiveLF
from repro.core.session import DataProgrammingSession
from repro.data import load_dataset
from repro.interactive.basic_selectors import RandomSelector
from repro.interactive.simulated_user import SimulatedUser
from repro.io import (
    ReplayUser,
    ScriptedSelector,
    SessionTranscript,
    TranscriptEntry,
    load_transcript,
    replay_session,
    save_transcript,
    transcript_from_session,
)
from repro.io.session_store import _lf_from_dict, _lf_to_dict
from repro.multiclass.lf import MultiClassLF


@pytest.fixture(scope="module")
def dataset():
    return load_dataset("amazon", scale="tiny", seed=0)


@pytest.fixture(scope="module")
def recorded(dataset):
    """A short live session and its transcript."""
    session = DataProgrammingSession(
        dataset, RandomSelector(), SimulatedUser(dataset, seed=3), seed=3
    )
    session.run(10)
    transcript = transcript_from_session(session, metadata={"method": "snorkel"})
    return session, transcript


class TestLFSerialization:
    def test_binary_round_trip(self):
        lf = PrimitiveLF(primitive_id=7, primitive="perfect", label=1)
        assert _lf_from_dict(_lf_to_dict(lf)) == lf

    def test_multiclass_round_trip(self):
        lf = MultiClassLF(primitive_id=3, primitive="goal", label=2)
        assert _lf_from_dict(_lf_to_dict(lf)) == lf

    def test_kind_distinguishes_types(self):
        binary = _lf_to_dict(PrimitiveLF(primitive_id=0, primitive="x", label=1))
        mc = _lf_to_dict(MultiClassLF(primitive_id=0, primitive="x", label=1))
        assert binary["kind"] == "binary"
        assert mc["kind"] == "multiclass"
        assert isinstance(_lf_from_dict(binary), PrimitiveLF)
        assert isinstance(_lf_from_dict(mc), MultiClassLF)

    def test_unknown_kind_rejected(self):
        with pytest.raises(ValueError, match="unknown LF kind"):
            _lf_from_dict({"kind": "ternary", "primitive_id": 0, "primitive": "x", "label": 1})

    def test_unknown_type_rejected(self):
        with pytest.raises(TypeError, match="cannot serialize"):
            _lf_to_dict(object())


class TestTranscriptModel:
    def test_from_session_captures_lineage(self, recorded):
        session, transcript = recorded
        assert len(transcript) == len(session.lineage)
        for entry, record in zip(transcript.entries, session.lineage.records):
            assert entry.dev_index == record.dev_index
            assert entry.lf == record.lf

    def test_metadata_preserved(self, recorded):
        _, transcript = recorded
        assert transcript.metadata["method"] == "snorkel"

    def test_unordered_entries_rejected(self):
        lf = PrimitiveLF(primitive_id=0, primitive="x", label=1)
        with pytest.raises(ValueError, match="ordered"):
            SessionTranscript(
                dataset_name="d",
                entries=[
                    TranscriptEntry(iteration=2, dev_index=0, lf=lf),
                    TranscriptEntry(iteration=1, dev_index=1, lf=lf),
                ],
            )

    def test_duplicate_iterations_rejected(self):
        lf = PrimitiveLF(primitive_id=0, primitive="x", label=1)
        with pytest.raises(ValueError, match="distinct"):
            SessionTranscript(
                dataset_name="d",
                entries=[
                    TranscriptEntry(iteration=1, dev_index=0, lf=lf),
                    TranscriptEntry(iteration=1, dev_index=1, lf=lf),
                ],
            )


class TestJsonRoundTrip:
    def test_save_load_identity(self, recorded, tmp_path):
        _, transcript = recorded
        path = save_transcript(transcript, tmp_path / "session.json")
        loaded = load_transcript(path)
        assert loaded.dataset_name == transcript.dataset_name
        assert loaded.metadata == transcript.metadata
        assert loaded.entries == transcript.entries

    def test_file_is_plain_json(self, recorded, tmp_path):
        _, transcript = recorded
        path = save_transcript(transcript, tmp_path / "session.json")
        data = json.loads(path.read_text())
        assert data["format_version"] == 1
        assert data["dataset_name"] == transcript.dataset_name

    def test_version_guard(self, recorded, tmp_path):
        _, transcript = recorded
        data = transcript.to_dict()
        data["format_version"] = 99
        path = tmp_path / "bad.json"
        path.write_text(json.dumps(data))
        with pytest.raises(ValueError, match="format version"):
            load_transcript(path)

    def test_save_leaves_no_temp_files(self, recorded, tmp_path):
        _, transcript = recorded
        save_transcript(transcript, tmp_path / "session.json")
        assert [p.name for p in tmp_path.iterdir()] == ["session.json"]

    def test_crash_mid_write_preserves_previous_transcript(
        self, recorded, tmp_path, monkeypatch
    ):
        # Regression: an in-place write that dies midway left a truncated
        # file load_transcript could not parse.  The atomic rename must
        # keep the previous complete transcript readable and clean up its
        # temp file.
        import repro.io.atomic as atomic

        _, transcript = recorded
        path = tmp_path / "session.json"
        save_transcript(transcript, path)
        before = path.read_text()

        def exploding_replace(src, dst):
            raise OSError("disk full")

        monkeypatch.setattr(atomic.os, "replace", exploding_replace)
        broken = SessionTranscript(dataset_name="other", entries=[], metadata={})
        with pytest.raises(OSError, match="disk full"):
            save_transcript(broken, path)
        monkeypatch.undo()
        assert path.read_text() == before
        assert load_transcript(path).dataset_name == transcript.dataset_name
        assert [p.name for p in tmp_path.iterdir()] == ["session.json"]

    def test_save_overwrites_atomically(self, recorded, tmp_path):
        _, transcript = recorded
        path = tmp_path / "session.json"
        save_transcript(transcript, path)
        updated = SessionTranscript(
            dataset_name=transcript.dataset_name,
            entries=list(transcript.entries[:1]),
            metadata={"method": "updated"},
        )
        save_transcript(updated, path)
        loaded = load_transcript(path)
        assert loaded.metadata == {"method": "updated"}
        assert len(loaded) == 1


class TestReplay:
    def test_replay_reproduces_lfs_and_score(self, dataset, recorded):
        session, transcript = recorded
        replayed = replay_session(transcript, dataset, seed=0)
        assert [lf.name for lf in replayed.lfs] == [lf.name for lf in session.lfs]
        assert replayed.test_score() == pytest.approx(session.test_score())

    def test_replay_through_different_pipeline(self, dataset, recorded):
        from repro.core.contextualizer import LFContextualizer

        _, transcript = recorded
        contextualized = replay_session(
            transcript, dataset, contextualizer=LFContextualizer(percentile=50.0), seed=0
        )
        assert len(contextualized.lfs) == len(transcript)
        # the refined matrix may abstain where the raw one voted
        assert (contextualized.L_train != 0).sum() >= (
            contextualized._effective_label_matrix() != 0
        ).sum()

    def test_replay_on_wrong_dataset_rejected(self, recorded):
        _, transcript = recorded
        other = load_dataset("youtube", scale="tiny", seed=0)
        with pytest.raises(ValueError, match="recorded on"):
            replay_session(transcript, other)

    def test_replay_user_detects_divergence(self, dataset, recorded):
        _, transcript = recorded
        user = ReplayUser(transcript)
        session = DataProgrammingSession(dataset, RandomSelector(), user, seed=9)
        state = session.build_state()
        wrong_index = (transcript.entries[0].dev_index + 1) % dataset.train.n
        with pytest.raises(ValueError, match="divergence"):
            user.create_lf(wrong_index, state)

    def test_replay_multiclass_session(self):
        from repro.multiclass import (
            MCRandomSelector,
            MCSimulatedUser,
            MultiClassSession,
            make_topics_dataset,
        )

        ds = make_topics_dataset(n_docs=300, seed=0, vocab_scale=5)
        live = MultiClassSession(ds, MCRandomSelector(), MCSimulatedUser(ds, seed=1), seed=1)
        live.run(8)
        transcript = transcript_from_session(live)
        replayed = replay_session(
            transcript, ds, session_factory=MultiClassSession, seed=0
        )
        assert [lf.name for lf in replayed.lfs] == [lf.name for lf in live.lfs]
        assert replayed.test_score() == pytest.approx(live.test_score())

    def test_scripted_selector_exhausts_to_none(self, dataset, recorded):
        _, transcript = recorded
        replayed = replay_session(transcript, dataset, seed=0)
        # one extra step after exhaustion is a no-op
        n_before = len(replayed.lfs)
        replayed.step()
        assert len(replayed.lfs) == n_before

    def test_replay_curve_matches_original(self, dataset):
        """Per-iteration scores match, not just the endpoint."""
        live = DataProgrammingSession(
            dataset, RandomSelector(), SimulatedUser(dataset, seed=11), seed=11
        )
        live_scores = []
        for _ in range(8):
            live.step()
            live_scores.append(live.test_score())
        transcript = transcript_from_session(live)
        replayed = DataProgrammingSession(
            dataset,
            ScriptedSelector(transcript),
            ReplayUser(transcript),
            seed=0,
        )
        replay_scores = []
        for _ in range(len(transcript)):
            replayed.step()
            replay_scores.append(replayed.test_score())
        # live sessions may have no-LF iterations; compare LF-bearing points
        assert replay_scores[-1] == pytest.approx(live_scores[-1])
        assert len(replayed.lfs) == len(live.lfs)
