"""Durable session checkpoints: round-trips and fail-closed loading.

The resume contract (ENGINE.md §5): a session restored from a checkpoint
continues **bit-identically** to the uninterrupted run — same posteriors,
same proxies, same selections, same RNG stream.  Pinned here for every
engine family (binary + multiclass, MeTaL + Dawid–Skene aggregators,
``lazy_proxy`` on and off), with the warm/cold cadence tightened so the
snapshot lands mid-warm-cycle (the hardest point to restore).
"""

import numpy as np
import pytest

from repro.core.session import DataProgrammingSession
from repro.core.seu import SEUSelector
from repro.data import load_dataset
from repro.interactive.simulated_user import SimulatedUser
from repro.io.checkpoint import (
    CHECKPOINT_FORMAT_VERSION,
    CheckpointError,
    load_checkpoint,
    load_session_checkpoint,
    save_checkpoint,
    save_session_checkpoint,
)
from repro.labelmodel.dawid_skene import DawidSkene
from repro.multiclass import make_topics_dataset
from repro.multiclass.session import MultiClassSession
from repro.multiclass.seu import MCSEUSelector
from repro.multiclass.simulated_user import MCSimulatedUser

#: Tight cadence so warm refits (and mid-cycle snapshots) happen on tiny data.
ENGINE_KWARGS = dict(warm_min_train=0, warm_after=2, full_refit_every=5)

SNAPSHOT_AT = 7  # mid warm-cycle: not a cold-backstop iteration
TOTAL_ITERATIONS = 12


@pytest.fixture(scope="module")
def binary_dataset():
    return load_dataset("youtube", scale="tiny", seed=0)


@pytest.fixture(scope="module")
def mc_dataset():
    return make_topics_dataset(n_docs=400, seed=0, vocab_scale=8)


def _binary_session(dataset, label_model: str, lazy_proxy: bool):
    factory = None
    if label_model == "dawid-skene":
        prior = dataset.label_prior

        def factory():
            return DawidSkene(class_prior=prior)

    return DataProgrammingSession(
        dataset,
        SEUSelector(),
        SimulatedUser(dataset, seed=11),
        label_model_factory=factory,
        lazy_proxy=lazy_proxy,
        seed=3,
        **ENGINE_KWARGS,
    )


def _mc_session(dataset, lazy_proxy: bool):
    return MultiClassSession(
        dataset,
        MCSEUSelector(),
        MCSimulatedUser(dataset, seed=11),
        lazy_proxy=lazy_proxy,
        seed=3,
        **ENGINE_KWARGS,
    )


FAMILIES = [
    ("binary-metal", "binary", "metal"),
    ("binary-dawid-skene", "binary", "dawid-skene"),
    ("multiclass-dawid-skene", "multiclass", "dawid-skene"),
]


def _build(kind: str, label_model: str, lazy_proxy: bool, binary_ds, mc_ds):
    if kind == "binary":
        return _binary_session(binary_ds, label_model, lazy_proxy)
    return _mc_session(mc_ds, lazy_proxy)


class TestRoundTripAllFamilies:
    @pytest.mark.parametrize("lazy_proxy", [True, False], ids=["lazy", "eager"])
    @pytest.mark.parametrize(
        "name,kind,label_model", FAMILIES, ids=[f[0] for f in FAMILIES]
    )
    def test_restored_continuation_is_bit_identical(
        self, name, kind, label_model, lazy_proxy, binary_dataset, mc_dataset, tmp_path
    ):
        # Uninterrupted reference run.
        ref = _build(kind, label_model, lazy_proxy, binary_dataset, mc_dataset)
        for _ in range(TOTAL_ITERATIONS):
            ref.step()
        ref._resolve_proxy()

        # Same configuration, snapshotted mid-run ...
        first = _build(kind, label_model, lazy_proxy, binary_dataset, mc_dataset)
        for _ in range(SNAPSHOT_AT):
            first.step()
        path = save_session_checkpoint(
            first, tmp_path / "session.ckpt.npz", extra={"at": SNAPSHOT_AT}
        )

        # ... restored into a fresh session and continued.
        restored = _build(kind, label_model, lazy_proxy, binary_dataset, mc_dataset)
        extra = load_session_checkpoint(restored, path)
        assert extra == {"at": SNAPSHOT_AT}
        for _ in range(TOTAL_ITERATIONS - SNAPSHOT_AT):
            restored.step()
        restored._resolve_proxy()

        np.testing.assert_array_equal(ref.L_train, restored.L_train)
        np.testing.assert_array_equal(ref.L_valid, restored.L_valid)
        np.testing.assert_array_equal(ref.soft_labels, restored.soft_labels)
        np.testing.assert_array_equal(ref.entropies, restored.entropies)
        np.testing.assert_array_equal(ref.proxy_proba, restored.proxy_proba)
        assert ref.selected == restored.selected
        assert ref.iteration == restored.iteration
        assert ref._refit_count == restored._refit_count
        assert [lf.primitive for lf in ref.lfs] == [lf.primitive for lf in restored.lfs]
        assert ref.test_score() == restored.test_score()
        # Continuation consumed the RNG streams identically.
        assert ref.rng.bit_generator.state == restored.rng.bit_generator.state
        assert (
            ref.user.rng.bit_generator.state == restored.user.rng.bit_generator.state
        )

    def test_snapshot_does_not_perturb_the_live_session(
        self, binary_dataset, tmp_path
    ):
        # Taking a checkpoint mid-run must not change the run's outcome.
        plain = _binary_session(binary_dataset, "metal", True)
        snapped = _binary_session(binary_dataset, "metal", True)
        for it in range(TOTAL_ITERATIONS):
            plain.step()
            snapped.step()
            if it == SNAPSHOT_AT:
                save_session_checkpoint(snapped, tmp_path / "mid.ckpt.npz")
        plain._resolve_proxy()
        snapped._resolve_proxy()
        np.testing.assert_array_equal(plain.soft_labels, snapped.soft_labels)
        np.testing.assert_array_equal(plain.proxy_proba, snapped.proxy_proba)
        assert plain.rng.bit_generator.state == snapped.rng.bit_generator.state


class TestWarmMinibatchRoundTrip:
    """Mid-warm-cycle restore under ``warm_end_mode`` (ENGINE.md §7).

    The generic family round-trips above already run with the default
    ``"minibatch"`` mode; these tests make the coverage non-vacuous: the
    snapshot point must land with live Adam state, a populated covered
    buffer, and a captured backstop anchor — and all of it must continue
    bit-identically after restore.  The ``"lbfgs"`` defeat switch gets
    its own round-trip.
    """

    @pytest.mark.parametrize("warm_end_mode", ["minibatch", "lbfgs"])
    def test_mid_warm_cycle_restore_continues_bit_identically(
        self, binary_dataset, tmp_path, warm_end_mode
    ):
        def build():
            return DataProgrammingSession(
                binary_dataset,
                SEUSelector(),
                SimulatedUser(binary_dataset, seed=11),
                warm_end_mode=warm_end_mode,
                seed=3,
                **ENGINE_KWARGS,
            )

        ref = build()
        for _ in range(TOTAL_ITERATIONS):
            ref.step()
        ref._resolve_proxy()

        first = build()
        for _ in range(SNAPSHOT_AT):
            first.step()
        if warm_end_mode == "minibatch":
            # The snapshot point is genuinely mid-warm-cycle: Adam has
            # stepped, the covered buffer exists, the anchor is set.
            assert first.end_model.mb_t_ > 0
            assert first.end_model.mb_rng_state_ is not None
            assert first._covered_buf is not None and first._covered_buf.size > 0
            assert first._end_anchor_ is not None
        path = save_session_checkpoint(first, tmp_path / "warm.ckpt.npz")

        restored = build()
        load_session_checkpoint(restored, path)
        if warm_end_mode == "minibatch":
            assert restored.end_model.mb_t_ == first.end_model.mb_t_
            assert restored.end_model.mb_rng_state_ == first.end_model.mb_rng_state_
            np.testing.assert_array_equal(
                restored._covered_buf.rows, first._covered_buf.rows
            )
        for _ in range(TOTAL_ITERATIONS - SNAPSHOT_AT):
            restored.step()
        restored._resolve_proxy()

        np.testing.assert_array_equal(ref.soft_labels, restored.soft_labels)
        np.testing.assert_array_equal(ref.proxy_proba, restored.proxy_proba)
        np.testing.assert_array_equal(ref.end_model.coef_, restored.end_model.coef_)
        assert ref.end_model.intercept_ == restored.end_model.intercept_
        assert ref.end_model.mb_t_ == restored.end_model.mb_t_
        assert ref.end_model.mb_rng_state_ == restored.end_model.mb_rng_state_
        assert ref.rng.bit_generator.state == restored.rng.bit_generator.state
        assert ref.test_score() == restored.test_score()


class TestFailClosedLoading:
    def test_missing_file(self, tmp_path):
        with pytest.raises(CheckpointError, match="does not exist"):
            load_checkpoint(tmp_path / "nope.ckpt.npz")

    def test_garbage_bytes(self, tmp_path):
        path = tmp_path / "garbage.ckpt.npz"
        path.write_bytes(b"this is not an npz archive at all")
        with pytest.raises(CheckpointError):
            load_checkpoint(path)

    def test_truncated_archive(self, tmp_path):
        path = tmp_path / "truncated.ckpt.npz"
        save_checkpoint(path, {"x": np.arange(1000)})
        data = path.read_bytes()
        path.write_bytes(data[: len(data) // 2])
        with pytest.raises(CheckpointError):
            load_checkpoint(path)

    def test_future_format_version(self, tmp_path, monkeypatch):
        import repro.io.checkpoint as ckpt

        path = tmp_path / "future.ckpt.npz"
        monkeypatch.setattr(ckpt, "CHECKPOINT_FORMAT_VERSION", CHECKPOINT_FORMAT_VERSION + 1)
        save_checkpoint(path, {"x": np.arange(3)})
        monkeypatch.undo()
        with pytest.raises(CheckpointError, match="format version"):
            load_checkpoint(path)

    def test_npz_without_session_payload(self, tmp_path, binary_dataset):
        path = tmp_path / "foreign.ckpt.npz"
        save_checkpoint(path, {"something": np.arange(3)})
        session = _binary_session(binary_dataset, "metal", True)
        with pytest.raises(CheckpointError, match="session snapshot"):
            load_session_checkpoint(session, path)

    def test_wrong_dataset_rejected(self, binary_dataset, tmp_path):
        session = _binary_session(binary_dataset, "metal", True)
        for _ in range(4):
            session.step()
        path = save_session_checkpoint(session, tmp_path / "yt.ckpt.npz")
        other = load_dataset("sms", scale="tiny", seed=0)
        target = DataProgrammingSession(
            other, SEUSelector(), SimulatedUser(other, seed=11), seed=3, **ENGINE_KWARGS
        )
        with pytest.raises(CheckpointError, match="dataset"):
            load_session_checkpoint(target, path)

    def test_wrong_engine_class_rejected(self, binary_dataset, mc_dataset, tmp_path):
        session = _binary_session(binary_dataset, "metal", True)
        path = save_session_checkpoint(session, tmp_path / "bin.ckpt.npz")
        target = _mc_session(mc_dataset, True)
        with pytest.raises(CheckpointError):
            load_session_checkpoint(target, path)

    def test_wrong_label_model_family_rejected(self, binary_dataset, tmp_path):
        session = _binary_session(binary_dataset, "metal", True)
        for _ in range(4):
            session.step()
        path = save_session_checkpoint(session, tmp_path / "metal.ckpt.npz")
        target = _binary_session(binary_dataset, "dawid-skene", True)
        with pytest.raises(CheckpointError):
            load_session_checkpoint(target, path)


class TestCheckpointValueRoundTrip:
    def test_nested_trees_and_dtypes(self, tmp_path):
        state = {
            "ints": {"a": 1, "b": [1, 2, 3]},
            "floats": 1.5,
            "none": None,
            "bool": True,
            "string": "hello",
            "arr_f64": np.linspace(0, 1, 7),
            "arr_i8": np.array([-1, 0, 1], dtype=np.int8),
            "nested": {"deep": {"arr": np.arange(6).reshape(2, 3)}},
            "big_int": 2**100,  # RNG states carry 128-bit integers
        }
        path = save_checkpoint(tmp_path / "tree.ckpt.npz", state)
        loaded = load_checkpoint(path)
        assert loaded["ints"] == {"a": 1, "b": [1, 2, 3]}
        assert loaded["floats"] == 1.5
        assert loaded["none"] is None
        assert loaded["bool"] is True
        assert loaded["string"] == "hello"
        assert loaded["big_int"] == 2**100
        np.testing.assert_array_equal(loaded["arr_f64"], state["arr_f64"])
        assert loaded["arr_i8"].dtype == np.int8
        np.testing.assert_array_equal(loaded["nested"]["deep"]["arr"], np.arange(6).reshape(2, 3))

    def test_unsupported_type_rejected_at_save(self, tmp_path):
        with pytest.raises(TypeError, match="unsupported type"):
            save_checkpoint(tmp_path / "bad.ckpt.npz", {"x": object()})

    def test_atomic_write_preserves_previous_on_failure(self, tmp_path, monkeypatch):
        path = tmp_path / "atomic.ckpt.npz"
        save_checkpoint(path, {"x": np.arange(3)})
        import repro.io.checkpoint as ckpt

        def boom(*args, **kwargs):
            raise OSError("disk full")

        monkeypatch.setattr(ckpt.np, "savez", boom)
        with pytest.raises(OSError):
            save_checkpoint(path, {"x": np.arange(5)})
        monkeypatch.undo()
        loaded = load_checkpoint(path)  # the old complete checkpoint survives
        np.testing.assert_array_equal(loaded["x"], np.arange(3))
        assert list(tmp_path.glob("*.tmp")) == []
