"""Checkpoint GC/rotation policy (keep_last + age cap)."""

import os

import pytest

from repro.io.checkpoint import RotationPolicy, rotate_checkpoints


def touch(path, age_seconds, now):
    path.write_bytes(b"x")
    os.utime(path, (now - age_seconds, now - age_seconds))
    return path


NOW = 1_700_000_000.0


class TestRotationPolicy:
    def test_validation(self):
        with pytest.raises(ValueError):
            RotationPolicy(keep_last=0)
        with pytest.raises(ValueError):
            RotationPolicy(max_age_seconds=0)
        RotationPolicy(keep_last=None, max_age_seconds=None)  # unbounded is legal

    def test_keep_last(self, tmp_path):
        paths = [
            touch(tmp_path / f"step-{i:08d}.ckpt.npz", age_seconds=100 - i, now=NOW)
            for i in range(5)
        ]
        stale = RotationPolicy(keep_last=2).stale(paths, now=NOW)
        assert sorted(p.name for p in stale) == [p.name for p in paths[:3]]

    def test_age_cap_spares_the_newest(self, tmp_path):
        old = touch(tmp_path / "a.ckpt.npz", age_seconds=5000, now=NOW)
        older = touch(tmp_path / "b.ckpt.npz", age_seconds=9000, now=NOW)
        stale = RotationPolicy(keep_last=5, max_age_seconds=3600).stale(
            [old, older], now=NOW
        )
        # both exceed the cap, but the newest restore point survives
        assert stale == [older]

    def test_combined_policy(self, tmp_path):
        fresh = touch(tmp_path / "c.ckpt.npz", age_seconds=10, now=NOW)
        mid = touch(tmp_path / "b.ckpt.npz", age_seconds=4000, now=NOW)
        ancient = touch(tmp_path / "a.ckpt.npz", age_seconds=9000, now=NOW)
        stale = RotationPolicy(keep_last=2, max_age_seconds=3600).stale(
            [fresh, mid, ancient], now=NOW
        )
        # ancient: beyond keep_last; mid: within count but over age
        assert sorted(p.name for p in stale) == ["a.ckpt.npz", "b.ckpt.npz"]
        assert fresh not in stale

    def test_unbounded_policy_keeps_everything(self, tmp_path):
        paths = [
            touch(tmp_path / f"{c}.ckpt.npz", age_seconds=10**6, now=NOW) for c in "abc"
        ]
        assert RotationPolicy(keep_last=None).stale(paths, now=NOW) == []


class TestRotateCheckpoints:
    def test_deletes_and_reports(self, tmp_path):
        for i in range(4):
            touch(tmp_path / f"step-{i:08d}.ckpt.npz", age_seconds=100 - i, now=NOW)
        touch(tmp_path / "not-a-checkpoint.txt", age_seconds=10**6, now=NOW)
        deleted = rotate_checkpoints(tmp_path, RotationPolicy(keep_last=2), now=NOW)
        assert sorted(p.name for p in deleted) == [
            "step-00000000.ckpt.npz",
            "step-00000001.ckpt.npz",
        ]
        survivors = sorted(p.name for p in tmp_path.iterdir())
        assert survivors == [
            "not-a-checkpoint.txt",  # pattern-scoped: foreign files untouched
            "step-00000002.ckpt.npz",
            "step-00000003.ckpt.npz",
        ]

    def test_missing_directory_is_empty_rotation(self, tmp_path):
        assert rotate_checkpoints(tmp_path / "absent", RotationPolicy()) == []
