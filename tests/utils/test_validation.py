"""Tests for validation helpers."""

import numpy as np
import pytest

from repro.utils.validation import (
    check_binary_labels,
    check_in_range,
    check_matching_length,
    check_positive,
    check_probabilities,
)


class TestCheckPositive:
    def test_accepts_positive(self):
        check_positive("x", 1.5)

    def test_rejects_zero_when_strict(self):
        with pytest.raises(ValueError, match="x"):
            check_positive("x", 0.0)

    def test_accepts_zero_when_not_strict(self):
        check_positive("x", 0.0, strict=False)

    def test_rejects_negative_always(self):
        with pytest.raises(ValueError):
            check_positive("x", -1, strict=False)


class TestCheckInRange:
    def test_inclusive_bounds_ok(self):
        check_in_range("p", 0.0, 0.0, 1.0)
        check_in_range("p", 1.0, 0.0, 1.0)

    def test_exclusive_bounds_fail(self):
        with pytest.raises(ValueError):
            check_in_range("p", 0.0, 0.0, 1.0, inclusive=False)

    def test_out_of_range(self):
        with pytest.raises(ValueError, match="p"):
            check_in_range("p", 1.5, 0.0, 1.0)


class TestCheckMatchingLength:
    def test_ok(self):
        check_matching_length("a", [1, 2], "b", [3, 4])

    def test_mismatch(self):
        with pytest.raises(ValueError, match="a and b"):
            check_matching_length("a", [1], "b", [1, 2])


class TestCheckBinaryLabels:
    def test_valid(self):
        out = check_binary_labels("y", np.array([1, -1, 1]))
        assert out.dtype == int

    def test_rejects_zero(self):
        with pytest.raises(ValueError):
            check_binary_labels("y", np.array([1, 0, -1]))

    def test_rejects_2d(self):
        with pytest.raises(ValueError):
            check_binary_labels("y", np.ones((2, 2)))


class TestCheckProbabilities:
    def test_valid_rows(self):
        check_probabilities("p", np.array([[0.3, 0.7], [0.5, 0.5]]))

    def test_rejects_negative(self):
        with pytest.raises(ValueError):
            check_probabilities("p", np.array([[-0.1, 1.1]]))

    def test_rejects_not_summing(self):
        with pytest.raises(ValueError):
            check_probabilities("p", np.array([[0.4, 0.4]]))
