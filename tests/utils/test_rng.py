"""Tests for seeded RNG helpers."""

import numpy as np
import pytest

from repro.utils.rng import ensure_rng, spawn_children, stable_hash_seed


class TestEnsureRng:
    def test_none_gives_generator(self):
        assert isinstance(ensure_rng(None), np.random.Generator)

    def test_int_seed_is_deterministic(self):
        a = ensure_rng(42).random(5)
        b = ensure_rng(42).random(5)
        np.testing.assert_array_equal(a, b)

    def test_different_seeds_differ(self):
        a = ensure_rng(1).random(5)
        b = ensure_rng(2).random(5)
        assert not np.allclose(a, b)

    def test_generator_passthrough(self):
        gen = np.random.default_rng(0)
        assert ensure_rng(gen) is gen


class TestSpawnChildren:
    def test_count(self):
        assert len(spawn_children(0, 4)) == 4

    def test_children_are_independent_streams(self):
        kids = spawn_children(0, 2)
        assert not np.allclose(kids[0].random(10), kids[1].random(10))

    def test_deterministic_from_int_seed(self):
        a = [g.random() for g in spawn_children(7, 3)]
        b = [g.random() for g in spawn_children(7, 3)]
        assert a == b

    def test_zero_children(self):
        assert spawn_children(0, 0) == []

    def test_negative_raises(self):
        with pytest.raises(ValueError):
            spawn_children(0, -1)

    def test_generator_seed_supported(self):
        kids = spawn_children(np.random.default_rng(0), 3)
        assert len(kids) == 3


class TestStableHashSeed:
    def test_stable(self):
        assert stable_hash_seed("amazon", 0) == stable_hash_seed("amazon", 0)

    def test_distinct_inputs_distinct_seeds(self):
        seeds = {stable_hash_seed(name, i) for name in ("a", "b", "c") for i in range(10)}
        assert len(seeds) == 30

    def test_in_uint32_range(self):
        s = stable_hash_seed("x", "y", 123)
        assert 0 <= s < 2**32


class TestStableHashSeedProcessStability:
    """``stable_hash_seed`` must be identical across interpreter processes.

    The parallel sweep runner derives every job's session seed in whatever
    worker process happens to run it and relies on the result matching the
    serial path bit-for-bit.  Builtin ``hash`` is salted per process via
    ``PYTHONHASHSEED``; these tests pin that the implementation does not
    depend on it — both by literal pinned values (stable across releases)
    and by recomputing under explicitly different hash salts.
    """

    #: Literal pins: if any of these change, every recorded sweep seed,
    #: job key, and store shard assignment silently shifts.
    PINNED = {
        ("amazon", 0): 3233612160,
        ("nemo", "amazon", 0, 0): 2499784465,
        ("user", "youtube", 123): 3722362074,
        (1, 2.5, None, True): 2361901360,
    }

    def test_pinned_literal_values(self):
        for parts, expected in self.PINNED.items():
            assert stable_hash_seed(*parts) == expected, parts

    def test_independent_of_pythonhashseed(self):
        import json
        import os
        import subprocess
        import sys

        code = (
            "import json, sys\n"
            "from repro.utils.rng import stable_hash_seed\n"
            "print(json.dumps([\n"
            "    stable_hash_seed('amazon', 0),\n"
            "    stable_hash_seed('nemo', 'amazon', 0, 0),\n"
            "    stable_hash_seed(1, 2.5, None, True),\n"
            "]))\n"
        )
        outputs = []
        for salt in ("0", "1", "424242"):
            env = dict(os.environ, PYTHONHASHSEED=salt)
            src = os.path.join(os.path.dirname(__file__), "..", "..", "src")
            env["PYTHONPATH"] = os.path.abspath(src) + os.pathsep + env.get(
                "PYTHONPATH", ""
            )
            result = subprocess.run(
                [sys.executable, "-c", code],
                capture_output=True,
                text=True,
                env=env,
                check=True,
            )
            outputs.append(json.loads(result.stdout))
        assert outputs[0] == outputs[1] == outputs[2]
        assert outputs[0] == [3233612160, 2499784465, 2361901360]
