"""Tests for the Vocabulary."""

import pytest

from repro.text.vocab import Vocabulary


class TestConstruction:
    def test_add_assigns_sequential_ids(self):
        v = Vocabulary()
        assert v.add("a") == 0
        assert v.add("b") == 1

    def test_add_is_idempotent(self):
        v = Vocabulary()
        assert v.add("a") == v.add("a")
        assert len(v) == 1

    def test_invalid_min_df(self):
        with pytest.raises(ValueError):
            Vocabulary(min_df=0)

    def test_invalid_max_df_ratio(self):
        with pytest.raises(ValueError):
            Vocabulary(max_df_ratio=0.0)


class TestFit:
    def test_order_is_first_occurrence(self):
        v = Vocabulary().fit([["b", "a"], ["a", "c"]])
        assert v.tokens == ["b", "a", "c"]

    def test_min_df_filters(self):
        v = Vocabulary(min_df=2).fit([["a", "b"], ["a", "c"], ["a"]])
        assert "a" in v
        assert "b" not in v and "c" not in v

    def test_max_df_filters_stopwords(self):
        docs = [["the", "x1"], ["the", "x2"], ["the", "x3"], ["the", "x4"]]
        v = Vocabulary(max_df_ratio=0.5).fit(docs)
        assert "the" not in v
        assert "x1" in v

    def test_doc_frequency_counts_documents_not_terms(self):
        v = Vocabulary().fit([["a", "a", "a"], ["a"]])
        assert v.doc_frequency("a") == 2

    def test_refit_resets(self):
        v = Vocabulary()
        v.fit([["a"]])
        v.fit([["b"]])
        assert "a" not in v and "b" in v

    def test_n_docs_fitted(self):
        v = Vocabulary().fit([["a"], ["b"], ["c"]])
        assert v.n_docs_fitted == 3


class TestLookup:
    def test_roundtrip(self):
        v = Vocabulary().fit([["alpha", "beta"]])
        for token in v:
            assert v.token_of(v.id_of(token)) == token

    def test_missing_raises(self):
        v = Vocabulary().fit([["a"]])
        with pytest.raises(KeyError):
            v.id_of("zzz")

    def test_get_default(self):
        v = Vocabulary().fit([["a"]])
        assert v.get("zzz") is None
        assert v.get("zzz", -1) == -1

    def test_contains(self):
        v = Vocabulary().fit([["a"]])
        assert "a" in v and "b" not in v
