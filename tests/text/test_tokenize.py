"""Tests for tokenization."""

import pytest
from hypothesis import given
from hypothesis import strategies as st

from repro.text.tokenize import ngrams, simple_tokenize


class TestSimpleTokenize:
    def test_basic(self):
        assert simple_tokenize("Perfect for my workouts") == [
            "perfect", "for", "my", "workouts",
        ]

    def test_punctuation_splits(self):
        assert simple_tokenize("good,bad;ugly!") == ["good", "bad", "ugly"]

    def test_apostrophes_kept(self):
        assert simple_tokenize("don't") == ["don't"]

    def test_numbers_kept(self):
        assert simple_tokenize("win 100 dollars") == ["win", "100", "dollars"]

    def test_empty_string(self):
        assert simple_tokenize("") == []

    def test_no_lowercase(self):
        assert simple_tokenize("ABC", lowercase=False) == []

    @given(st.text(max_size=200))
    def test_tokens_are_lowercase_alnum(self, text):
        for token in simple_tokenize(text):
            assert token
            assert all(c.islower() or c.isdigit() or c == "'" for c in token)

    @given(st.text(max_size=200))
    def test_idempotent_on_own_output(self, text):
        joined = " ".join(simple_tokenize(text))
        assert simple_tokenize(joined) == simple_tokenize(text)


class TestNgrams:
    def test_unigrams_passthrough(self):
        assert ngrams(["a", "b"], 1) == ["a", "b"]

    def test_bigrams(self):
        assert ngrams(["a", "b", "c"], 2) == ["a b", "b c"]

    def test_trigram_of_short_list_empty(self):
        assert ngrams(["a"], 3) == []

    def test_invalid_n(self):
        with pytest.raises(ValueError):
            ngrams(["a"], 0)

    @given(st.lists(st.text(alphabet="abc", min_size=1, max_size=3), max_size=20), st.integers(1, 5))
    def test_count_invariant(self, tokens, n):
        assert len(ngrams(tokens, n)) == max(0, len(tokens) - n + 1)
