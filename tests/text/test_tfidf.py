"""Tests for TF-IDF featurization."""

import numpy as np
import pytest
import scipy.sparse as sp
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.text.tfidf import TfidfVectorizer

DOC_STRATEGY = st.lists(
    st.text(alphabet="abcde", min_size=1, max_size=4), min_size=1, max_size=8
).map(" ".join)


class TestFitTransform:
    def test_shape(self):
        X = TfidfVectorizer().fit_transform(["good movie", "bad movie"])
        assert X.shape == (2, 3)

    def test_hand_computed_values(self):
        # Corpus: d0 = "a a b", d1 = "a c".  Smoothed IDF, no normalization.
        vec = TfidfVectorizer(normalize=False)
        X = vec.fit_transform(["a a b", "a c"]).toarray()
        vocab = vec.vocabulary
        idf_a = np.log(3 / 3) + 1  # df=2, n=2
        idf_b = np.log(3 / 2) + 1  # df=1
        assert X[0, vocab.id_of("a")] == pytest.approx(2 * idf_a)
        assert X[0, vocab.id_of("b")] == pytest.approx(1 * idf_b)
        assert X[1, vocab.id_of("b")] == 0.0

    def test_rows_l2_normalized(self):
        X = TfidfVectorizer().fit_transform(["a b c", "c d", "a"])
        norms = np.sqrt(np.asarray(X.multiply(X).sum(axis=1))).ravel()
        np.testing.assert_allclose(norms, 1.0, atol=1e-9)

    def test_out_of_vocabulary_ignored(self):
        vec = TfidfVectorizer().fit(["a b"])
        X = vec.transform(["z z z"])
        assert X.nnz == 0

    def test_transform_before_fit_raises(self):
        with pytest.raises(RuntimeError):
            TfidfVectorizer().transform(["a"])

    def test_sublinear_tf(self):
        vec = TfidfVectorizer(normalize=False, sublinear_tf=True)
        X = vec.fit_transform(["a a a a"]).toarray()
        expected = (1 + np.log(4)) * vec.idf[0]
        assert X[0, 0] == pytest.approx(expected)

    def test_min_df_shrinks_vocab(self):
        vec = TfidfVectorizer(min_df=2).fit(["a b", "a c", "a d"])
        assert vec.vocabulary.tokens == ["a"]

    def test_empty_doc_row_is_zero(self):
        vec = TfidfVectorizer().fit(["a b"])
        X = vec.transform(["", "a"])
        assert X[0].nnz == 0
        assert X[1].nnz == 1

    def test_idf_requires_fit(self):
        with pytest.raises(RuntimeError):
            _ = TfidfVectorizer().idf


class TestProperties:
    @given(st.lists(DOC_STRATEGY, min_size=1, max_size=12))
    @settings(max_examples=30, deadline=None)
    def test_nonnegative_and_sparse(self, docs):
        X = TfidfVectorizer().fit_transform(docs)
        assert sp.issparse(X)
        assert (X.data >= 0).all()
        assert X.shape[0] == len(docs)

    @given(st.lists(DOC_STRATEGY, min_size=1, max_size=12))
    @settings(max_examples=30, deadline=None)
    def test_row_norms_at_most_one(self, docs):
        X = TfidfVectorizer().fit_transform(docs)
        norms = np.sqrt(np.asarray(X.multiply(X).sum(axis=1))).ravel()
        assert np.all(norms <= 1.0 + 1e-9)

    @given(st.lists(DOC_STRATEGY, min_size=2, max_size=10))
    @settings(max_examples=30, deadline=None)
    def test_transform_deterministic(self, docs):
        vec = TfidfVectorizer().fit(docs)
        a = vec.transform(docs).toarray()
        b = vec.transform(docs).toarray()
        np.testing.assert_array_equal(a, b)

    @given(st.lists(DOC_STRATEGY, min_size=1, max_size=10))
    @settings(max_examples=30, deadline=None)
    def test_sparsity_pattern_matches_vocabulary_presence(self, docs):
        vec = TfidfVectorizer()
        X = vec.fit_transform(docs)
        vocab = vec.vocabulary
        for row, doc in enumerate(docs):
            present = {vocab.get(t) for t in doc.split()} - {None}
            assert set(X.getrow(row).indices) == present
