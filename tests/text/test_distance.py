"""Tests for distance functions."""

import numpy as np
import pytest
import scipy.sparse as sp
from hypothesis import given, settings
from hypothesis import strategies as st
from hypothesis.extra.numpy import arrays

from repro.text.distance import (
    cosine_distance_matrix,
    cosine_distances_to_point,
    distances_to_point,
    euclidean_distance_matrix,
    euclidean_distances_to_point,
    get_distance_fn,
)

POINTS = arrays(
    float,
    st.tuples(st.integers(1, 8), st.just(4)),
    elements=st.floats(-5, 5, allow_nan=False),
)


class TestCosine:
    def test_identical_vectors_zero(self):
        X = np.array([[1.0, 2.0]])
        assert cosine_distances_to_point(X, np.array([2.0, 4.0]))[0] == pytest.approx(0.0)

    def test_orthogonal_vectors_one(self):
        X = np.array([[1.0, 0.0]])
        assert cosine_distances_to_point(X, np.array([0.0, 1.0]))[0] == pytest.approx(1.0)

    def test_opposite_vectors_two(self):
        X = np.array([[1.0, 0.0]])
        assert cosine_distances_to_point(X, np.array([-1.0, 0.0]))[0] == pytest.approx(2.0)

    def test_zero_vector_max_distance(self):
        X = np.array([[0.0, 0.0]])
        assert cosine_distances_to_point(X, np.array([1.0, 0.0]))[0] == pytest.approx(1.0)

    def test_sparse_matches_dense(self):
        rng = np.random.default_rng(0)
        X = rng.random((6, 5))
        p = rng.random(5)
        dense = cosine_distances_to_point(X, p)
        sparse = cosine_distances_to_point(sp.csr_matrix(X), p)
        np.testing.assert_allclose(dense, sparse)

    @given(POINTS)
    @settings(max_examples=30, deadline=None)
    def test_range(self, X):
        d = cosine_distances_to_point(X, X[0])
        assert np.all(d >= -1e-9) and np.all(d <= 2 + 1e-9)


class TestEuclidean:
    def test_known_value(self):
        X = np.array([[0.0, 0.0], [3.0, 4.0]])
        d = euclidean_distances_to_point(X, np.array([0.0, 0.0]))
        np.testing.assert_allclose(d, [0.0, 5.0])

    def test_sparse_matches_dense(self):
        rng = np.random.default_rng(1)
        X = rng.random((6, 5))
        p = rng.random(5)
        np.testing.assert_allclose(
            euclidean_distances_to_point(X, p),
            euclidean_distances_to_point(sp.csr_matrix(X), p),
            atol=1e-9,
        )

    @given(POINTS)
    @settings(max_examples=30, deadline=None)
    def test_self_distance_zero(self, X):
        d = euclidean_distances_to_point(X, X[0])
        assert d[0] == pytest.approx(0.0, abs=1e-6)

    @given(POINTS)
    @settings(max_examples=30, deadline=None)
    def test_triangle_inequality_via_third_point(self, X):
        # d(x, p) <= d(x, m) + d(m, p) for every row x, with m = X[0], p = zeros.
        p = np.zeros(X.shape[1])
        m = X[0]
        d_xp = euclidean_distances_to_point(X, p)
        d_xm = euclidean_distances_to_point(X, m)
        d_mp = float(np.linalg.norm(m - p))
        assert np.all(d_xp <= d_xm + d_mp + 1e-6)


class TestDispatch:
    def test_get_distance_fn_names(self):
        assert get_distance_fn("cosine") is cosine_distances_to_point
        assert get_distance_fn("euclidean") is euclidean_distances_to_point

    def test_unknown_metric(self):
        with pytest.raises(ValueError, match="unknown distance metric"):
            get_distance_fn("manhattan")

    def test_distances_to_point_dispatches(self):
        X = np.eye(3)
        np.testing.assert_allclose(
            distances_to_point(X, X[0], "euclidean"),
            euclidean_distances_to_point(X, X[0]),
        )


class TestMatrices:
    def test_cosine_matrix_diag_zero(self):
        rng = np.random.default_rng(2)
        X = rng.random((5, 3)) + 0.1
        D = cosine_distance_matrix(X)
        np.testing.assert_allclose(np.diag(D), 0.0, atol=1e-9)

    def test_euclidean_matrix_symmetric(self):
        rng = np.random.default_rng(3)
        X = rng.random((5, 3))
        D = euclidean_distance_matrix(X)
        np.testing.assert_allclose(D, D.T, atol=1e-9)

    def test_matrix_consistent_with_point_function(self):
        rng = np.random.default_rng(4)
        X = rng.random((5, 3))
        D = cosine_distance_matrix(X)
        np.testing.assert_allclose(D[:, 2], cosine_distances_to_point(X, X[2]), atol=1e-9)
