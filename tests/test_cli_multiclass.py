"""Tests for the CLI's multiclass (topics) dataset integration."""

import json

import pytest

from repro.cli import main


class TestTopicsDataset:
    def test_run_with_mc_method(self, capsys):
        code = main(
            [
                "run",
                "--dataset", "topics",
                "--scale", "tiny",
                "--method", "snorkel-mc",
                "--iterations", "4",
                "--eval-every", "2",
                "--seeds", "1",
            ]
        )
        assert code == 0
        out = capsys.readouterr().out
        assert "K=4" in out
        assert "curve average" in out

    def test_run_with_binary_method_on_topics_fails_clearly(self):
        with pytest.raises(ValueError, match="unknown multiclass method"):
            main(
                [
                    "run",
                    "--dataset", "topics",
                    "--scale", "tiny",
                    "--method", "nemo",
                    "--iterations", "2",
                    "--seeds", "1",
                ]
            )

    def test_compare_on_topics(self, capsys):
        code = main(
            [
                "compare",
                "--dataset", "topics",
                "--scale", "tiny",
                "--methods", "snorkel-mc", "abstain-mc",
                "--iterations", "4",
                "--eval-every", "2",
                "--seeds", "1",
            ]
        )
        assert code == 0
        out = capsys.readouterr().out
        assert "snorkel-mc" in out and "abstain-mc" in out

    def test_record_multiclass_transcript(self, tmp_path, capsys):
        path = tmp_path / "mc.json"
        code = main(
            [
                "run",
                "--dataset", "topics",
                "--scale", "tiny",
                "--method", "snorkel-mc",
                "--iterations", "5",
                "--eval-every", "5",
                "--seeds", "1",
                "--save-transcript", str(path),
            ]
        )
        assert code == 0
        data = json.loads(path.read_text())
        assert data["dataset_name"] == "topics"
        assert all(e["lf"]["kind"] == "multiclass" for e in data["entries"])
