"""Tests for the command-line interface (python -m repro)."""

import json

import pytest

from repro.cli import build_parser, main


class TestParser:
    def test_requires_subcommand(self):
        with pytest.raises(SystemExit):
            build_parser().parse_args([])

    def test_unknown_dataset_rejected(self):
        with pytest.raises(SystemExit):
            build_parser().parse_args(["run", "--dataset", "enron"])

    def test_unknown_scale_rejected(self):
        with pytest.raises(SystemExit):
            build_parser().parse_args(["datasets", "--scale", "huge"])

    def test_run_defaults(self):
        args = build_parser().parse_args(["run"])
        assert args.method == "nemo"
        assert args.dataset == "amazon"
        assert args.iterations == 50
        assert args.threshold == 0.5

    def test_replay_requires_dataset(self):
        with pytest.raises(SystemExit):
            build_parser().parse_args(["replay", "t.json"])


class TestSubcommands:
    def test_datasets_lists_all(self, capsys):
        assert main(["datasets", "--scale", "tiny"]) == 0
        out = capsys.readouterr().out
        for name in ("amazon", "yelp", "imdb", "youtube", "sms", "vg"):
            assert name in out

    def test_run_prints_curve(self, capsys):
        code = main(
            [
                "run",
                "--dataset", "amazon",
                "--scale", "tiny",
                "--method", "snorkel",
                "--iterations", "6",
                "--eval-every", "3",
                "--seeds", "1",
            ]
        )
        assert code == 0
        out = capsys.readouterr().out
        assert "curve average" in out
        assert "method=snorkel" in out

    def test_compare_prints_table(self, capsys):
        code = main(
            [
                "compare",
                "--dataset", "amazon",
                "--scale", "tiny",
                "--methods", "snorkel", "random",
                "--iterations", "5",
                "--seeds", "1",
            ]
        )
        assert code == 0
        out = capsys.readouterr().out
        assert "snorkel" in out and "random" in out

    def test_record_and_replay_round_trip(self, tmp_path, capsys):
        transcript_path = tmp_path / "session.json"
        code = main(
            [
                "run",
                "--dataset", "amazon",
                "--scale", "tiny",
                "--method", "snorkel",
                "--iterations", "8",
                "--seeds", "1",
                "--save-transcript", str(transcript_path),
            ]
        )
        assert code == 0
        data = json.loads(transcript_path.read_text())
        assert data["dataset_name"] == "amazon"
        assert data["metadata"]["method"] == "snorkel"

        code = main(
            [
                "replay",
                str(transcript_path),
                "--dataset", "amazon",
                "--scale", "tiny",
                "--contextualize",
            ]
        )
        assert code == 0
        out = capsys.readouterr().out
        assert "pipeline=contextualized" in out
        assert "test score" in out

    def test_replay_with_gamma_uses_context_sequence(self, tmp_path, capsys):
        transcript_path = tmp_path / "session.json"
        main(
            [
                "run",
                "--dataset", "amazon",
                "--scale", "tiny",
                "--method", "snorkel",
                "--iterations", "6",
                "--seeds", "1",
                "--save-transcript", str(transcript_path),
            ]
        )
        code = main(
            [
                "replay",
                str(transcript_path),
                "--dataset", "amazon",
                "--scale", "tiny",
                "--gamma", "0.5",
            ]
        )
        assert code == 0
        assert "context-sequence(gamma=0.5)" in capsys.readouterr().out

    def test_replay_with_majority_label_model(self, tmp_path, capsys):
        transcript_path = tmp_path / "session.json"
        main(
            [
                "run",
                "--dataset", "amazon",
                "--scale", "tiny",
                "--method", "snorkel",
                "--iterations", "6",
                "--seeds", "1",
                "--save-transcript", str(transcript_path),
            ]
        )
        code = main(
            [
                "replay",
                str(transcript_path),
                "--dataset", "amazon",
                "--scale", "tiny",
                "--label-model", "majority",
            ]
        )
        assert code == 0
        assert "label_model=majority" in capsys.readouterr().out


class TestSweepSubcommand:
    def test_sweep_defaults(self):
        args = build_parser().parse_args(["sweep"])
        assert args.methods == ["nemo", "snorkel"]
        assert args.datasets == ["amazon"]
        assert args.jobs == 1
        assert args.out == "sweep_out"

    def test_sweep_runs_and_resumes(self, tmp_path, capsys):
        argv = [
            "sweep",
            "--datasets", "youtube",
            "--methods", "random", "abstain",
            "--scale", "tiny",
            "--iterations", "6",
            "--eval-every", "3",
            "--seeds", "2",
            "--out", str(tmp_path / "out"),
        ]
        assert main(argv) == 0
        out = capsys.readouterr().out
        assert "4 jobs" in out
        assert "ran 4 jobs, skipped 0" in out
        assert "youtube" in out

        # Re-running the identical sweep skips everything.
        assert main(argv) == 0
        out = capsys.readouterr().out
        assert "ran 0 jobs, skipped 4" in out

    def test_sweep_partial_run_exits_nonzero(self, tmp_path, capsys):
        argv = [
            "sweep",
            "--datasets", "youtube",
            "--methods", "random",
            "--scale", "tiny",
            "--iterations", "4",
            "--eval-every", "2",
            "--seeds", "2",
            "--max-jobs", "1",
            "--out", str(tmp_path / "out"),
        ]
        assert main(argv) == 1
        assert "still pending" in capsys.readouterr().out

    def test_run_accepts_jobs_flag(self, capsys):
        code = main(
            [
                "run",
                "--dataset", "youtube",
                "--scale", "tiny",
                "--method", "random",
                "--iterations", "4",
                "--eval-every", "2",
                "--seeds", "2",
                "--jobs", "2",
            ]
        )
        assert code == 0
        assert "curve average" in capsys.readouterr().out
