"""Tests for the command-line interface (python -m repro)."""

import json

import pytest

from repro.cli import build_parser, main


class TestParser:
    def test_requires_subcommand(self):
        with pytest.raises(SystemExit):
            build_parser().parse_args([])

    def test_unknown_dataset_rejected(self):
        with pytest.raises(SystemExit):
            build_parser().parse_args(["run", "--dataset", "enron"])

    def test_unknown_scale_rejected(self):
        with pytest.raises(SystemExit):
            build_parser().parse_args(["datasets", "--scale", "huge"])

    def test_run_defaults(self):
        args = build_parser().parse_args(["run"])
        assert args.method == "nemo"
        assert args.dataset == "amazon"
        assert args.iterations == 50
        assert args.threshold == 0.5

    def test_replay_requires_dataset(self):
        with pytest.raises(SystemExit):
            build_parser().parse_args(["replay", "t.json"])


class TestSubcommands:
    def test_datasets_lists_all(self, capsys):
        assert main(["datasets", "--scale", "tiny"]) == 0
        out = capsys.readouterr().out
        for name in ("amazon", "yelp", "imdb", "youtube", "sms", "vg"):
            assert name in out

    def test_run_prints_curve(self, capsys):
        code = main(
            [
                "run",
                "--dataset", "amazon",
                "--scale", "tiny",
                "--method", "snorkel",
                "--iterations", "6",
                "--eval-every", "3",
                "--seeds", "1",
            ]
        )
        assert code == 0
        out = capsys.readouterr().out
        assert "curve average" in out
        assert "method=snorkel" in out

    def test_compare_prints_table(self, capsys):
        code = main(
            [
                "compare",
                "--dataset", "amazon",
                "--scale", "tiny",
                "--methods", "snorkel", "random",
                "--iterations", "5",
                "--seeds", "1",
            ]
        )
        assert code == 0
        out = capsys.readouterr().out
        assert "snorkel" in out and "random" in out

    def test_record_and_replay_round_trip(self, tmp_path, capsys):
        transcript_path = tmp_path / "session.json"
        code = main(
            [
                "run",
                "--dataset", "amazon",
                "--scale", "tiny",
                "--method", "snorkel",
                "--iterations", "8",
                "--seeds", "1",
                "--save-transcript", str(transcript_path),
            ]
        )
        assert code == 0
        data = json.loads(transcript_path.read_text())
        assert data["dataset_name"] == "amazon"
        assert data["metadata"]["method"] == "snorkel"

        code = main(
            [
                "replay",
                str(transcript_path),
                "--dataset", "amazon",
                "--scale", "tiny",
                "--contextualize",
            ]
        )
        assert code == 0
        out = capsys.readouterr().out
        assert "pipeline=contextualized" in out
        assert "test score" in out

    def test_replay_with_gamma_uses_context_sequence(self, tmp_path, capsys):
        transcript_path = tmp_path / "session.json"
        main(
            [
                "run",
                "--dataset", "amazon",
                "--scale", "tiny",
                "--method", "snorkel",
                "--iterations", "6",
                "--seeds", "1",
                "--save-transcript", str(transcript_path),
            ]
        )
        code = main(
            [
                "replay",
                str(transcript_path),
                "--dataset", "amazon",
                "--scale", "tiny",
                "--gamma", "0.5",
            ]
        )
        assert code == 0
        assert "context-sequence(gamma=0.5)" in capsys.readouterr().out

    def test_replay_with_majority_label_model(self, tmp_path, capsys):
        transcript_path = tmp_path / "session.json"
        main(
            [
                "run",
                "--dataset", "amazon",
                "--scale", "tiny",
                "--method", "snorkel",
                "--iterations", "6",
                "--seeds", "1",
                "--save-transcript", str(transcript_path),
            ]
        )
        code = main(
            [
                "replay",
                str(transcript_path),
                "--dataset", "amazon",
                "--scale", "tiny",
                "--label-model", "majority",
            ]
        )
        assert code == 0
        assert "label_model=majority" in capsys.readouterr().out
