"""Run the docstring examples of the public modules as tests.

Keeps the ``Examples`` sections in the API docs honest: if a signature or
behaviour changes, the example breaks here rather than silently rotting.
The package-level quickstart (``repro/__init__``) runs a real 10-iteration
session, so it doubles as a smoke test of the documented entry point.
"""

import doctest

import pytest

import repro
import repro.data.minting
import repro.endmodel.logistic
import repro.endmodel.softmax
import repro.text.tfidf
import repro.text.tokenize
import repro.utils.rng

MODULES_WITH_EXAMPLES = [
    repro.data.minting,
    repro.endmodel.logistic,
    repro.endmodel.softmax,
    repro.text.tfidf,
    repro.text.tokenize,
    repro.utils.rng,
]


@pytest.mark.parametrize(
    "module", MODULES_WITH_EXAMPLES, ids=lambda m: m.__name__
)
def test_module_doctests(module):
    result = doctest.testmod(module, verbose=False)
    assert result.attempted > 0, f"{module.__name__} advertises examples but has none"
    assert result.failed == 0


@pytest.mark.slow
def test_package_quickstart_doctest():
    result = doctest.testmod(repro, verbose=False)
    assert result.attempted > 0
    assert result.failed == 0
