"""Engine behaviour: walking, suppression flow, meta findings, JSON shape."""

import json

import pytest

from repro.analysis import run_lint
from repro.analysis.engine import iter_python_files
from repro.analysis.rules.rng import SeededRngDiscipline

#: A one-line seeded-rng violation used throughout as the canonical finding.
VIOLATION = "import numpy as np\nrng = np.random.default_rng()\n"


class TestFileWalk:
    def test_pycache_and_hidden_dirs_are_skipped(self, lint_tree):
        report = lint_tree(
            {
                "pkg/ok.py": "x = 1\n",
                "pkg/__pycache__/bad.py": VIOLATION,
                "pkg/.hidden/bad.py": VIOLATION,
                "pkg/sub.egg-info/bad.py": VIOLATION,
            },
            rules=[SeededRngDiscipline()],
        )
        assert report.n_files == 1
        assert report.findings == []

    def test_explicit_file_path_is_linted(self, lint_tree):
        report = lint_tree(
            {"pkg/bad.py": VIOLATION}, rules=[SeededRngDiscipline()],
            paths=["pkg/bad.py"],
        )
        assert report.n_files == 1
        assert len(report.unsuppressed) == 1

    def test_missing_explicit_path_raises(self, tmp_path):
        with pytest.raises(FileNotFoundError):
            run_lint(paths=["no_such_dir"], root=tmp_path)

    def test_default_paths_skip_missing_entries(self, tmp_path):
        # An empty root has none of src/tools/benchmarks/examples: the
        # default walk degrades to zero files instead of erroring.
        report = run_lint(root=tmp_path)
        assert report.n_files == 0
        assert report.exit_code == 0

    def test_iter_python_files_dedupes_overlapping_paths(self, tmp_path):
        (tmp_path / "pkg").mkdir()
        f = tmp_path / "pkg" / "mod.py"
        f.write_text("x = 1\n")
        files = list(iter_python_files([tmp_path / "pkg", f]))
        assert len(files) == 1


class TestSuppression:
    def test_pragma_suppresses_finding_on_its_line(self, lint_tree):
        src = (
            "import numpy as np\n"
            "rng = np.random.default_rng()  "
            "# repro-lint: disable=seeded-rng -- fixture exception\n"
        )
        report = lint_tree({"pkg/mod.py": src}, rules=[SeededRngDiscipline()])
        assert report.unsuppressed == []
        assert len(report.suppressed) == 1
        finding = report.suppressed[0]
        assert finding.suppressed
        assert finding.suppress_reason == "fixture exception"
        assert report.exit_code == 0

    def test_pragma_on_wrong_line_does_not_suppress(self, lint_tree):
        src = (
            "import numpy as np\n"
            "# repro-lint: disable=seeded-rng -- wrong line\n"
            "rng = np.random.default_rng()\n"
        )
        report = lint_tree({"pkg/mod.py": src}, rules=[SeededRngDiscipline()])
        assert report.exit_code == 1
        # Both the finding and the stale pragma are reported, unsuppressed.
        assert sorted(f.rule for f in report.unsuppressed) == [
            "seeded-rng",
            "unused-pragma",
        ]

    def test_pragma_for_other_rule_does_not_suppress(self, lint_tree):
        src = (
            "import numpy as np\n"
            "rng = np.random.default_rng()  "
            "# repro-lint: disable=adapter-budget -- wrong rule\n"
        )
        report = lint_tree({"pkg/mod.py": src})
        assert any(f.rule == "seeded-rng" and not f.suppressed for f in report.findings)


class TestMetaFindings:
    def test_parse_error_is_reported(self, lint_tree):
        report = lint_tree({"pkg/broken.py": "def f(:\n"})
        assert [f.rule for f in report.findings] == ["parse-error"]
        assert report.exit_code == 1
        # Unparseable files are not counted as checked.
        assert report.n_files == 0

    def test_reasonless_pragma_is_bad(self, lint_tree):
        report = lint_tree(
            {"pkg/mod.py": "x = 1  # repro-lint: disable=seeded-rng\n"}
        )
        assert [f.rule for f in report.findings] == ["bad-pragma"]

    def test_unknown_rule_in_pragma_is_bad(self, lint_tree):
        report = lint_tree(
            {"pkg/mod.py": "x = 1  # repro-lint: disable=not-a-rule -- because\n"}
        )
        bad = [f for f in report.findings if f.rule == "bad-pragma"]
        assert len(bad) == 1
        assert "not-a-rule" in bad[0].message

    def test_stale_pragma_is_unused(self, lint_tree):
        report = lint_tree(
            {"pkg/mod.py": "x = 1  # repro-lint: disable=seeded-rng -- stale\n"}
        )
        assert [f.rule for f in report.findings] == ["unused-pragma"]
        assert report.exit_code == 1


class TestReportShape:
    def test_json_format(self, lint_tree):
        report = lint_tree({"pkg/bad.py": VIOLATION}, rules=[SeededRngDiscipline()])
        payload = json.loads(report.to_json())
        assert payload["format"] == "repro-lint-findings"
        assert payload["version"] == 1
        assert payload["n_findings"] == 1
        assert payload["n_unsuppressed"] == 1
        (entry,) = payload["findings"]
        assert entry["rule"] == "seeded-rng"
        assert entry["path"] == "pkg/bad.py"
        assert entry["line"] == 2
        assert entry["suppressed"] is False

    def test_findings_are_sorted_by_path_then_line(self, lint_tree):
        report = lint_tree(
            {
                "pkg/b.py": VIOLATION,
                "pkg/a.py": "import numpy as np\nx = 1\ny = np.random.default_rng()\n",
            },
            rules=[SeededRngDiscipline()],
        )
        assert [(f.path, f.line) for f in report.findings] == [
            ("pkg/a.py", 3),
            ("pkg/b.py", 2),
        ]
