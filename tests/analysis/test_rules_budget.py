"""Adapter line budget, plus the tools/adapter_budget.py shim contract."""

import importlib.util
from pathlib import Path

from repro.analysis.rules.budget import ADAPTER_MODULES, LINE_BUDGET, AdapterBudget

REPO_ROOT = Path(__file__).resolve().parents[2]


def _module_of_lines(n):
    return "\n".join(f"x{i} = {i}" for i in range(n)) + "\n"


class TestAdapterBudget:
    def test_over_budget_adapter_is_flagged_at_line_one(self, lint_tree):
        report = lint_tree(
            {ADAPTER_MODULES[0]: _module_of_lines(LINE_BUDGET + 5)},
            rules=[AdapterBudget()],
        )
        (finding,) = report.findings
        assert finding.rule == "adapter-budget"
        assert finding.line == 1
        assert str(LINE_BUDGET) in finding.message

    def test_under_budget_adapter_passes(self, lint_tree):
        report = lint_tree(
            {ADAPTER_MODULES[0]: _module_of_lines(LINE_BUDGET - 5)},
            rules=[AdapterBudget()],
        )
        assert report.findings == []

    def test_non_adapter_module_is_exempt(self, lint_tree):
        report = lint_tree(
            {"src/repro/core/engine.py": _module_of_lines(LINE_BUDGET * 4)},
            rules=[AdapterBudget()],
        )
        assert report.findings == []


class TestShim:
    """tools/adapter_budget.py must keep its historical API over the rule."""

    def _load_shim(self):
        spec = importlib.util.spec_from_file_location(
            "adapter_budget_shim", REPO_ROOT / "tools" / "adapter_budget.py"
        )
        module = importlib.util.module_from_spec(spec)
        spec.loader.exec_module(module)
        return module

    def test_shim_shares_the_rule_constants(self):
        shim = self._load_shim()
        assert shim.ADAPTER_MODULES is ADAPTER_MODULES
        assert shim.LINE_BUDGET == LINE_BUDGET

    def test_shim_check_is_clean_on_the_committed_tree(self):
        shim = self._load_shim()
        assert shim.check() == []
