"""The two checkpoint-contract rules over FittedStateMixin subclasses."""

from repro.analysis.rules.fitted_state import FittedDictMutation, FittedStateComplete


class TestFittedStateComplete:
    def test_undeclared_fitted_attr_is_flagged(self, lint_tree):
        report = lint_tree(
            {
                "pkg/model.py": """
                class FittedStateMixin:
                    pass

                class Model(FittedStateMixin):
                    _FITTED_ATTRS = ("coef_",)

                    def fit(self, X):
                        self.coef_ = X
                        self.extra_ = 1
                        return self
                """
            },
            rules=[FittedStateComplete()],
        )
        (finding,) = report.findings
        assert finding.rule == "fitted-state-complete"
        assert "extra_" in finding.message

    def test_declared_private_and_unsuffixed_attrs_pass(self, lint_tree):
        report = lint_tree(
            {
                "pkg/model.py": """
                class FittedStateMixin:
                    pass

                class Model(FittedStateMixin):
                    _FITTED_ATTRS = ("coef_",)

                    def fit_partial(self, X):
                        self.coef_ = X          # declared
                        self._scratch_ = 2      # private scratch
                        self.n_iter = 3         # no trailing underscore
                        local_ = 4              # not a self attribute
                        return self

                    def helper(self):
                        self.anything_ = 5      # not a fit* method
                """
            },
            rules=[FittedStateComplete()],
        )
        assert report.findings == []

    def test_hierarchy_resolves_across_files(self, lint_tree):
        report = lint_tree(
            {
                "pkg/base.py": """
                class FittedStateMixin:
                    pass

                class LabelBase(FittedStateMixin):
                    _FITTED_ATTRS = ("priors_",)
                """,
                "pkg/model.py": """
                from pkg.base import LabelBase

                class Concrete(LabelBase):
                    _FITTED_ATTRS = ("coef_",)

                    def fit(self, X):
                        self.priors_ = X        # inherited declaration
                        self.coef_ = X          # own declaration
                        self.rogue_ = X         # declared nowhere
                """,
            },
            rules=[FittedStateComplete()],
        )
        (finding,) = report.findings
        assert "rogue_" in finding.message
        assert finding.path == "pkg/model.py"

    def test_dynamic_fitted_attrs_disables_completeness(self, lint_tree):
        # A computed _FITTED_ATTRS makes the declared set unknowable; the
        # rule must stay silent rather than flag every assignment.
        report = lint_tree(
            {
                "pkg/model.py": """
                class FittedStateMixin:
                    pass

                EXTRA = ("coef_",)

                class Model(FittedStateMixin):
                    _FITTED_ATTRS = EXTRA + ("bias_",)

                    def fit(self, X):
                        self.coef_ = X
                        self.mystery_ = X
                """
            },
            rules=[FittedStateComplete()],
        )
        assert report.findings == []

    def test_pragma_suppresses(self, lint_tree):
        report = lint_tree(
            {
                "pkg/model.py": """
                class FittedStateMixin:
                    pass

                class Model(FittedStateMixin):
                    _FITTED_ATTRS = ("coef_",)

                    def fit(self, X):
                        self.tmp_ = X  # repro-lint: disable=fitted-state-complete -- derived cache, rebuilt on load
                """
            },
            rules=[FittedStateComplete()],
        )
        assert report.unsuppressed == []
        assert len(report.suppressed) == 1


class TestFittedDictMutation:
    def test_subscript_store_is_flagged(self, lint_tree):
        report = lint_tree(
            {
                "pkg/model.py": """
                class FittedStateMixin:
                    pass

                class Model(FittedStateMixin):
                    _FITTED_ATTRS = ("state_",)

                    def refresh(self):
                        self.state_["k"] = 1
                """
            },
            rules=[FittedDictMutation()],
        )
        (finding,) = report.findings
        assert finding.rule == "fitted-dict-mutation"
        assert "state_" in finding.message

    def test_mutating_method_call_is_flagged(self, lint_tree):
        report = lint_tree(
            {
                "pkg/model.py": """
                class FittedStateMixin:
                    pass

                class Model(FittedStateMixin):
                    _FITTED_ATTRS = ("state_",)

                    def refresh(self, other):
                        self.state_.update(other)
                """
            },
            rules=[FittedDictMutation()],
        )
        (finding,) = report.findings
        assert ".update(" in finding.message

    def test_reassignment_and_undeclared_attrs_pass(self, lint_tree):
        report = lint_tree(
            {
                "pkg/model.py": """
                class FittedStateMixin:
                    pass

                class Model(FittedStateMixin):
                    _FITTED_ATTRS = ("state_",)

                    def refresh(self, other):
                        self.state_ = {**other}     # reassignment is the fix
                        self.cache["k"] = 1         # not a fitted attribute
                        other.update({})            # not on self
                """
            },
            rules=[FittedDictMutation()],
        )
        assert report.findings == []

    def test_pragma_suppresses(self, lint_tree):
        report = lint_tree(
            {
                "pkg/model.py": """
                class FittedStateMixin:
                    pass

                class Model(FittedStateMixin):
                    _FITTED_ATTRS = ("state_",)

                    def refresh(self):
                        self.state_.clear()  # repro-lint: disable=fitted-dict-mutation -- attr is re-snapshotted immediately after
                """
            },
            rules=[FittedDictMutation()],
        )
        assert report.unsuppressed == []
        assert len(report.suppressed) == 1
