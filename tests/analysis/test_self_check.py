"""The committed tree must lint clean: `repro lint` is CI's gate.

This is the same invariant the CI lint job enforces; running it in the
test suite keeps `pytest` sufficient to know a change will pass CI.
"""

import json
import subprocess
import sys
from pathlib import Path

from repro.analysis import DEFAULT_LINT_PATHS, run_lint

REPO_ROOT = Path(__file__).resolve().parents[2]


class TestCommittedTree:
    def test_zero_unsuppressed_findings(self):
        report = run_lint(root=REPO_ROOT)
        assert report.n_files > 100  # the walk really covered the tree
        offenders = [f.format() for f in report.unsuppressed]
        assert offenders == [], "\n".join(offenders)

    def test_every_suppression_carries_a_reason(self):
        report = run_lint(root=REPO_ROOT)
        assert report.suppressed, "expected the documented pragma exceptions"
        for finding in report.suppressed:
            assert finding.suppress_reason, finding.format()

    def test_default_paths_all_exist_here(self):
        for rel in DEFAULT_LINT_PATHS:
            assert (REPO_ROOT / rel).is_dir(), rel


class TestCli:
    def test_lint_command_exits_zero_and_writes_artifact(self, tmp_path):
        out = tmp_path / "findings.json"
        proc = subprocess.run(
            [sys.executable, "-m", "repro", "lint", "--root", str(REPO_ROOT),
             "--output", str(out)],
            capture_output=True,
            text=True,
            cwd=REPO_ROOT,
            env={"PYTHONPATH": str(REPO_ROOT / "src"), "PATH": "/usr/bin:/bin"},
        )
        assert proc.returncode == 0, proc.stdout + proc.stderr
        payload = json.loads(out.read_text())
        assert payload["format"] == "repro-lint-findings"
        assert payload["n_unsuppressed"] == 0

    def test_list_rules_names_the_five_contracts(self):
        proc = subprocess.run(
            [sys.executable, "-m", "repro", "lint", "--list-rules"],
            capture_output=True,
            text=True,
            cwd=REPO_ROOT,
            env={"PYTHONPATH": str(REPO_ROOT / "src"), "PATH": "/usr/bin:/bin"},
        )
        assert proc.returncode == 0
        for rule in (
            "adapter-budget",
            "fitted-dict-mutation",
            "fitted-state-complete",
            "seeded-rng",
            "serve-lock-discipline",
        ):
            assert rule in proc.stdout
