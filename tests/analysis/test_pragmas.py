"""Pragma comment parsing: shape, malformations, string-literal immunity."""

from repro.analysis import parse_pragmas


class TestWellFormed:
    def test_single_rule_with_reason(self):
        src = "x = rng()  # repro-lint: disable=seeded-rng -- scratch stream\n"
        pragmas = parse_pragmas(src)
        assert list(pragmas) == [1]
        p = pragmas[1]
        assert p.problem is None
        assert p.rules == ("seeded-rng",)
        assert p.reason == "scratch stream"
        assert p.covers("seeded-rng")
        assert not p.covers("adapter-budget")

    def test_multiple_rules_comma_separated(self):
        src = "y = 1  # repro-lint: disable=rule-a,rule-b -- spans two contracts\n"
        p = parse_pragmas(src)[1]
        assert p.problem is None
        assert p.rules == ("rule-a", "rule-b")
        assert p.covers("rule-a") and p.covers("rule-b")

    def test_line_numbers_are_physical_lines(self):
        src = "a = 1\nb = 2  # repro-lint: disable=r -- why\nc = 3\n"
        assert list(parse_pragmas(src)) == [2]


class TestMalformed:
    def test_missing_reason_is_a_problem(self):
        src = "x = 1  # repro-lint: disable=seeded-rng\n"
        p = parse_pragmas(src)[1]
        assert p.problem is not None
        assert "mandatory" in p.problem
        assert not p.covers("seeded-rng")

    def test_missing_rule_list_is_a_problem(self):
        src = "x = 1  # repro-lint: everything is fine\n"
        p = parse_pragmas(src)[1]
        assert p.problem is not None

    def test_empty_reason_after_dashes_is_a_problem(self):
        src = "x = 1  # repro-lint: disable=seeded-rng --\n"
        p = parse_pragmas(src)[1]
        assert p.problem is not None


class TestNonPragmas:
    def test_plain_comments_are_ignored(self):
        assert parse_pragmas("x = 1  # just a note\n") == {}

    def test_tag_inside_string_literal_is_not_a_pragma(self):
        # tokenize-based location: the tag inside a string is data, not
        # a suppression.
        src = 'msg = "# repro-lint: disable=seeded-rng -- nope"\n'
        assert parse_pragmas(src) == {}

    def test_unparseable_source_yields_no_pragmas(self):
        assert parse_pragmas("def f(:\n    'unterminated\n") == {}
