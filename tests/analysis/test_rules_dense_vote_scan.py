"""dense-vote-scan: dense abstain scans stay out of label-model hot paths."""

from repro.analysis.rules.dense_vote_scan import DenseVoteScan


def _lint(lint_tree, files):
    return lint_tree(files, rules=[DenseVoteScan()])


class TestDenseScanViolations:
    def test_mask_reduction_is_flagged(self, lint_tree):
        report = _lint(
            lint_tree,
            {
                "src/repro/labelmodel/new_model.py": """
                def _posterior(L):
                    return (L != 0).any(axis=1)
                """
            },
        )
        (finding,) = report.findings
        assert finding.rule == "dense-vote-scan"
        assert "ColumnStats" in finding.message

    def test_named_sentinel_assignment_is_flagged(self, lint_tree):
        report = _lint(
            lint_tree,
            {
                "src/repro/labelmodel/new_model.py": """
                from repro.labelmodel.matrix import ABSTAIN

                def fit(L):
                    covered = L != ABSTAIN
                    return covered
                """
            },
        )
        assert len(report.findings) == 1

    def test_attribute_sentinel_in_call_is_flagged(self, lint_tree):
        report = _lint(
            lint_tree,
            {
                "src/repro/multiclass/dawid_skene.py": """
                import numpy as np

                class Model:
                    def fit(self, L):
                        return np.where(L == self.abstain, 0.0, 1.0)
                """
            },
        )
        assert len(report.findings) == 1

    def test_mask_used_as_index_is_flagged(self, lint_tree):
        report = _lint(
            lint_tree,
            {
                "src/repro/labelmodel/new_model.py": """
                def fired_values(col):
                    return col[col != 0]
                """
            },
        )
        assert len(report.findings) == 1


class TestDenseScanExemptions:
    def test_scalar_guard_never_fires(self, lint_tree):
        report = _lint(
            lint_tree,
            {
                "src/repro/labelmodel/new_model.py": """
                def fit(L):
                    if L.shape[1] == 0:
                        return None
                    while L.ndim != 0:
                        break
                    return L.shape[0] == 0 or L.shape[1] == 0
                """
            },
        )
        assert report.findings == []

    def test_dense_suffix_oracle_is_exempt(self, lint_tree):
        report = _lint(
            lint_tree,
            {
                "src/repro/labelmodel/new_model.py": """
                def _posterior_dense(L):
                    fires = (L != 0).astype(float)
                    return fires
                """
            },
        )
        assert report.findings == []

    def test_designated_diagnostics_helper_is_exempt(self, lint_tree):
        report = _lint(
            lint_tree,
            {
                "src/repro/labelmodel/matrix.py": """
                def coverage_mask(L):
                    return (L != 0).any(axis=1)
                """
            },
        )
        assert report.findings == []

    def test_marginal_ll_oracle_is_exempt(self, lint_tree):
        report = _lint(
            lint_tree,
            {
                "src/repro/labelmodel/new_model.py": """
                class Model:
                    def _marginal_ll(self, L):
                        fires = L != 0
                        return fires.sum()
                """
            },
        )
        assert report.findings == []

    def test_dense_only_models_are_exempt(self, lint_tree):
        report = _lint(
            lint_tree,
            {
                "src/repro/labelmodel/majority.py": """
                def fit(L):
                    covered = L != 0
                    return covered
                """,
                "src/repro/labelmodel/triplet.py": """
                def fit(L):
                    covered = L != 0
                    return covered
                """,
            },
        )
        assert report.findings == []

    def test_files_outside_scope_are_exempt(self, lint_tree):
        report = _lint(
            lint_tree,
            {
                "src/repro/core/engine.py": """
                def refit(L):
                    covered = L != 0
                    return covered
                """
            },
        )
        assert report.findings == []

    def test_non_abstain_comparand_is_exempt(self, lint_tree):
        # Comparing entry *values* against a vote label (±1, k) is an
        # O(nnz) flat-array op in the stats kernels, not a dense scan.
        report = _lint(
            lint_tree,
            {
                "src/repro/labelmodel/new_model.py": """
                import numpy as np

                def _posterior_stats(values, table_plus, table_minus, cols):
                    return np.where(values == 1, table_plus[cols], table_minus[cols])
                """
            },
        )
        assert report.findings == []

    def test_pragma_suppresses_with_reason(self, lint_tree):
        report = _lint(
            lint_tree,
            {
                "src/repro/labelmodel/new_model.py": """
                def fit(L):
                    covered = L != 0  # repro-lint: disable=dense-vote-scan -- one-off migration probe
                    return covered
                """
            },
        )
        (finding,) = report.findings
        assert finding.suppressed
