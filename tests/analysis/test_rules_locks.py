"""Serve lock discipline: *_locked calls need a lexically held lock."""

from repro.analysis.rules.locks import ServeLockDiscipline


class TestViolations:
    def test_bare_call_is_flagged(self, lint_tree):
        report = lint_tree(
            {
                "pkg/manager.py": """
                class Manager:
                    def evict(self):
                        self._snapshot_locked()
                """
            },
            rules=[ServeLockDiscipline()],
        )
        (finding,) = report.findings
        assert finding.rule == "serve-lock-discipline"
        assert "_snapshot_locked" in finding.message

    def test_lambda_defers_past_the_with_block(self, lint_tree):
        # The lambda body runs later, when the with-block's lock is long
        # released — lexical nesting inside `with` proves nothing.
        report = lint_tree(
            {
                "pkg/manager.py": """
                class Manager:
                    def schedule(self):
                        with self._lock:
                            return lambda: self._snapshot_locked()
                """
            },
            rules=[ServeLockDiscipline()],
        )
        assert len(report.findings) == 1

    def test_lock_in_enclosing_function_does_not_leak_into_nested_def(self, lint_tree):
        report = lint_tree(
            {
                "pkg/manager.py": """
                class Manager:
                    def outer(self):
                        with self._lock:
                            def cb():
                                self._snapshot_locked()
                            return cb
                """
            },
            rules=[ServeLockDiscipline()],
        )
        assert len(report.findings) == 1


class TestAllowed:
    def test_call_under_with_lock(self, lint_tree):
        report = lint_tree(
            {
                "pkg/manager.py": """
                class Manager:
                    def commit(self, live):
                        with live.lock:
                            self._after_commit_locked(live)
                        with self._lock:
                            self._snapshot_locked()
                        with self._datasets_lock:
                            self._load_locked()
                """
            },
            rules=[ServeLockDiscipline()],
        )
        assert report.findings == []

    def test_call_under_command_context(self, lint_tree):
        report = lint_tree(
            {
                "pkg/manager.py": """
                class Manager:
                    def step(self, name):
                        with self._command(name) as live:
                            self._after_commit_locked(live)
                """
            },
            rules=[ServeLockDiscipline()],
        )
        assert report.findings == []

    def test_locked_method_may_call_locked_methods(self, lint_tree):
        # The suffix propagates the contract to *its* callers.
        report = lint_tree(
            {
                "pkg/manager.py": """
                class Manager:
                    def _after_commit_locked(self, live):
                        self._snapshot_locked(live)
                """
            },
            rules=[ServeLockDiscipline()],
        )
        assert report.findings == []

    def test_pragma_suppresses_handoff_the_ast_cannot_see(self, lint_tree):
        report = lint_tree(
            {
                "pkg/manager.py": """
                class Manager:
                    def evict(self, victim):
                        self._snapshot_locked(victim)  # repro-lint: disable=serve-lock-discipline -- victim.lock acquired non-blocking by _pick_victim
                """
            },
            rules=[ServeLockDiscipline()],
        )
        assert report.unsuppressed == []
        assert len(report.suppressed) == 1
