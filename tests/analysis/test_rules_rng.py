"""Seeded-RNG discipline: every numpy.random touch outside utils/rng.py."""

from repro.analysis.rules.rng import SeededRngDiscipline


class TestViolations:
    def test_direct_call_is_flagged(self, lint_tree):
        report = lint_tree(
            {
                "pkg/mod.py": """
                import numpy as np

                def draw():
                    return np.random.default_rng().random()
                """
            },
            rules=[SeededRngDiscipline()],
        )
        (finding,) = report.findings
        assert finding.rule == "seeded-rng"
        assert "np.random.default_rng" in finding.message

    def test_legacy_global_draw_is_flagged(self, lint_tree):
        report = lint_tree(
            {
                "pkg/mod.py": """
                import numpy

                x = numpy.random.rand(3)
                """
            },
            rules=[SeededRngDiscipline()],
        )
        assert len(report.findings) == 1

    def test_import_from_numpy_random_is_flagged(self, lint_tree):
        report = lint_tree(
            {"pkg/mod.py": "from numpy.random import default_rng\n"},
            rules=[SeededRngDiscipline()],
        )
        (finding,) = report.findings
        assert "choke point" in finding.message

    def test_bare_factory_reference_is_flagged_once(self, lint_tree):
        # default_factory=np.random.default_rng never *calls* at the use
        # site, but still routes a stream around the choke point.  The
        # reference check must not double-report actual calls.
        report = lint_tree(
            {
                "pkg/mod.py": """
                import numpy as np
                from dataclasses import dataclass, field

                @dataclass
                class State:
                    rng: object = field(default_factory=np.random.default_rng)
                """
            },
            rules=[SeededRngDiscipline()],
        )
        assert len(report.findings) == 1
        assert "factory" in report.findings[0].message

    def test_module_alias_via_from_numpy_import_random(self, lint_tree):
        report = lint_tree(
            {
                "pkg/mod.py": """
                from numpy import random as npr

                g = npr.default_rng(0)
                """
            },
            rules=[SeededRngDiscipline()],
        )
        assert len(report.findings) == 1


class TestAllowed:
    def test_class_references_create_no_stream(self, lint_tree):
        report = lint_tree(
            {
                "pkg/mod.py": """
                import numpy as np

                def use(rng: np.random.Generator) -> bool:
                    return isinstance(rng, np.random.Generator)
                """
            },
            rules=[SeededRngDiscipline()],
        )
        assert report.findings == []

    def test_allowlisted_choke_point_file(self, lint_tree):
        report = lint_tree(
            {
                "src/repro/utils/rng.py": """
                import numpy as np

                def ensure_rng(seed):
                    return np.random.default_rng(seed)
                """
            },
            rules=[SeededRngDiscipline()],
        )
        assert report.findings == []

    def test_unrelated_random_attribute_is_not_numpy(self, lint_tree):
        report = lint_tree(
            {
                "pkg/mod.py": """
                import numpy as np

                class Box:
                    random = None

                b = Box()
                b.random.default_rng = 1
                """
            },
            rules=[SeededRngDiscipline()],
        )
        # b.random is not one of the file's numpy.random aliases.
        assert report.findings == []

    def test_pragma_suppresses(self, lint_tree):
        report = lint_tree(
            {
                "pkg/mod.py": """
                import numpy as np

                gen = np.random.default_rng()  # repro-lint: disable=seeded-rng -- state overwritten from checkpoint on next line
                """
            },
            rules=[SeededRngDiscipline()],
        )
        assert report.unsuppressed == []
        assert len(report.suppressed) == 1
