"""obs-no-state-leak: instrumentation stays out of checkpointed state."""

from repro.analysis.rules.obs_state import ObsNoStateLeak


class TestObsLeakViolations:
    def test_obs_object_on_declared_fitted_attr_is_flagged(self, lint_tree):
        report = lint_tree(
            {
                "pkg/mod.py": """
                from repro.obs import Histogram
                from repro.utils.state import FittedStateMixin

                class Model(FittedStateMixin):
                    _FITTED_ATTRS = ("weights_", "latency_")

                    def fit(self):
                        self.latency_ = Histogram("h", "", ())
                """
            },
            rules=[ObsNoStateLeak()],
        )
        (finding,) = report.findings
        assert finding.rule == "obs-no-state-leak"
        assert "Histogram" in finding.message
        assert "latency_" in finding.message

    def test_obs_object_on_fitted_style_attr_is_flagged(self, lint_tree):
        # Not declared, but the trailing-underscore convention means
        # fitted-state-complete would force a declaration — flag it here
        # too rather than letting the two rules disagree.
        report = lint_tree(
            {
                "pkg/mod.py": """
                class Model(FittedStateMixin):
                    _FITTED_ATTRS = ("weights_",)

                    def fit(self):
                        self.observer_ = EngineObserver()
                """
            },
            rules=[ObsNoStateLeak()],
        )
        (finding,) = report.findings
        assert "EngineObserver" in finding.message

    def test_hierarchy_resolves_across_files(self, lint_tree):
        report = lint_tree(
            {
                "pkg/base.py": """
                class Base(FittedStateMixin):
                    _FITTED_ATTRS = ("mu_",)
                """,
                "pkg/model.py": """
                class Child(Base):
                    def fit(self):
                        self.mu_ = Counter("c", "", ())
                """,
            },
            rules=[ObsNoStateLeak()],
        )
        (finding,) = report.findings
        assert "Child" in finding.message

    def test_wall_clock_in_state_dict_is_flagged(self, lint_tree):
        report = lint_tree(
            {
                "pkg/mod.py": """
                import time

                class Session:
                    def state_dict(self):
                        return {"saved_at": time.time(), "x": self.x}
                """
            },
            rules=[ObsNoStateLeak()],
        )
        (finding,) = report.findings
        assert "time.time" in finding.message
        assert "state_dict" in finding.message

    def test_datetime_now_in_state_dict_is_flagged(self, lint_tree):
        report = lint_tree(
            {
                "pkg/mod.py": """
                import datetime

                class Session:
                    def state_dict(self):
                        return {"ts": datetime.datetime.now().isoformat()}
                """
            },
            rules=[ObsNoStateLeak()],
        )
        (finding,) = report.findings
        assert "datetime.now" in finding.message


class TestObsLeakAllowed:
    def test_transient_observer_attr_is_fine(self, lint_tree):
        # The engine's own pattern: observer on a plain (non-fitted)
        # attribute, invisible to state_dict.
        report = lint_tree(
            {
                "pkg/mod.py": """
                class Engine(FittedStateMixin):
                    _FITTED_ATTRS = ("weights_",)

                    def _init(self):
                        self.observer = EngineObserver()
                        self._registry = MetricsRegistry()
                """
            },
            rules=[ObsNoStateLeak()],
        )
        assert report.findings == []

    def test_obs_types_outside_fitted_classes_are_fine(self, lint_tree):
        report = lint_tree(
            {
                "pkg/mod.py": """
                class Manager:
                    def __init__(self):
                        self.metrics = MetricsRegistry()
                        self.latency_ = Histogram("h", "", ())
                """
            },
            rules=[ObsNoStateLeak()],
        )
        assert report.findings == []

    def test_wall_clock_outside_state_dict_is_fine(self, lint_tree):
        report = lint_tree(
            {
                "pkg/mod.py": """
                import time

                class Manager:
                    def snapshot_meta(self):
                        return {"saved_at": time.time()}

                    def state_dict(self):
                        return {"t0": time.perf_counter() - time.perf_counter()}
                """
            },
            rules=[ObsNoStateLeak()],
        )
        assert report.findings == []

    def test_pragma_suppresses(self, lint_tree):
        report = lint_tree(
            {
                "pkg/mod.py": """
                import time

                class Session:
                    def state_dict(self):
                        return {"saved_at": time.time()}  # repro-lint: disable=obs-no-state-leak -- sidecar test fixture
                """
            },
            rules=[ObsNoStateLeak()],
        )
        assert report.unsuppressed == []
        assert len(report.suppressed) == 1


class TestCommittedTree:
    def test_shipped_sources_are_clean(self, lint_tree):
        # The real tree is linted by test_lint_self elsewhere; this is the
        # focused guarantee that the new rule passes on src/repro.
        from pathlib import Path

        from repro.analysis import run_lint

        root = Path(__file__).resolve().parents[2]
        report = run_lint(paths=["src/repro"], root=root, rules=[ObsNoStateLeak()])
        # Single-rule runs still surface other rules' pragmas as unused;
        # only this rule's own findings are under test here.
        assert [f for f in report.findings if f.rule == "obs-no-state-leak"] == []
