"""Shared fixture for the lint-engine tests: lint an in-memory file tree."""

import textwrap

import pytest

from repro.analysis import run_lint


@pytest.fixture
def lint_tree(tmp_path):
    """Write a ``{relpath: source}`` tree under ``tmp_path`` and lint it.

    ``paths`` defaults to the top-level entries of the tree so the walk
    covers exactly the fixture files.  ``rules=None`` runs the full
    default registry (engine tests); rule tests pass a single fresh
    instance to isolate the rule under test.
    """

    def _lint(files, rules=None, paths=None):
        tops = []
        for rel, source in files.items():
            path = tmp_path / rel
            path.parent.mkdir(parents=True, exist_ok=True)
            path.write_text(textwrap.dedent(source))
            top = rel.split("/", 1)[0]
            if top not in tops:
                tops.append(top)
        return run_lint(
            paths=paths if paths is not None else sorted(tops),
            root=tmp_path,
            rules=rules,
        )

    return _lint
