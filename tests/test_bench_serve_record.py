"""Guards on the committed serve-latency benchmark record.

`BENCH_serve_latency.json` is the serve path's performance ledger: the
multi-client latency percentiles, the zero-error requirement, and the
cold-start-storm measurement must not silently disappear when the
loadtest is regenerated.  The same check runs in the CI serve smoke
(`repro loadtest --quick`).
"""

import json
from pathlib import Path

from repro.serve.loadtest import REQUIRED_COMMANDS, check_record

REPO_ROOT = Path(__file__).resolve().parent.parent


def load_record():
    return json.loads((REPO_ROOT / "BENCH_serve_latency.json").read_text())


class TestCommittedServeBenchRecord:
    def test_record_passes_schema_check(self):
        assert check_record(load_record()) == []

    def test_record_is_a_full_run_not_a_smoke(self):
        record = load_record()
        assert record["quick"] is False
        assert record["config"]["clients"] >= 4
        assert record["sessions_total"] >= 8

    def test_zero_errors_under_concurrency(self):
        record = load_record()
        assert record["errors"]["total"] == 0
        assert record["errors"]["by_kind"] == {}

    def test_latency_aggregates_for_every_lifecycle_command(self):
        record = load_record()
        for command in REQUIRED_COMMANDS:
            entry = record["latency_ms"][command]
            assert entry["n"] >= record["config"]["clients"]
            assert 0 < entry["p50"] <= entry["p99"] <= entry["max"]

    def test_throughput_fields_positive(self):
        record = load_record()
        assert record["sessions_per_second"] > 0
        assert record["commands_per_second"] > 0

    def test_cold_start_storm_recorded(self):
        cold = load_record()["cold_start"]
        assert cold is not None
        assert cold["sessions"] >= 4
        assert cold["errors"] == 0
        # The summed individual restore latencies must exceed the storm's
        # wall clock — first touches overlapped instead of serializing.
        # (The hard K-way parallelism guarantee, independent of machine
        # speed, is pinned by tests/serve/test_concurrency.py.)
        assert cold["parallel_speedup"] > 1.0
