"""Instrumentation is determinism-neutral: on vs off changes nothing.

ENGINE.md §9's contract: attaching an observer, a metrics registry, and
an active request span must not perturb a single bit of a session's
transcript or its checkpoint payload.  These tests run identical seeded
sessions with instrumentation fully enabled and fully disabled and
compare exactly.
"""

import numpy as np
import pytest

from repro.io.checkpoint import save_session_checkpoint
from repro.obs import EngineObserver, MetricsRegistry, request_span


@pytest.fixture(scope="module")
def binary_dataset():
    from repro.data import load_dataset

    return load_dataset("amazon", scale="tiny", seed=0)


def _nemo_session(dataset, instrumented: bool):
    from repro.core.contextualizer import LFContextualizer, PercentileTuner
    from repro.core.session import DataProgrammingSession
    from repro.core.seu import SEUSelector
    from repro.interactive.simulated_user import SimulatedUser

    session = DataProgrammingSession(
        dataset,
        SEUSelector(),
        SimulatedUser(dataset, seed=1),
        contextualizer=LFContextualizer(),
        percentile_tuner=PercentileTuner(metric=dataset.metric),
        seed=0,
    )
    if instrumented:
        session.observer = EngineObserver(MetricsRegistry())
    return session


def _transcript(session):
    return {
        "lfs": [(int(lf.primitive_id), int(lf.label)) for lf in session.lfs],
        "selected": sorted(int(i) for i in session.selected),
        "percentile": session.active_percentile_,
        "score": session.test_score(),
    }


class TestTranscriptParity:
    def test_instrumented_run_is_bit_identical(self, binary_dataset):
        bare = _nemo_session(binary_dataset, instrumented=False)
        bare.run(10)
        instrumented = _nemo_session(binary_dataset, instrumented=True)
        with request_span("test.run"):  # engine annotates the active span
            instrumented.run(10)
        assert _transcript(instrumented) == _transcript(bare)
        np.testing.assert_array_equal(
            instrumented.soft_labels, bare.soft_labels
        )
        # ... and the instrumentation actually ran (not vacuous parity)
        commands = instrumented.observer.registry.get("repro_engine_commands_total")
        assert sum(v for _, v in commands.items()) >= 10


class TestCheckpointParity:
    def test_payloads_identical_with_and_without_observer(
        self, binary_dataset, tmp_path
    ):
        """On vs off: same keys, same bytes — except the pre-existing
        ``phase_timings`` floats, which are wall-clock measurements and
        differ between *any* two runs, instrumented or not."""
        import json

        bare = _nemo_session(binary_dataset, instrumented=False)
        bare.run(6)
        instrumented = _nemo_session(binary_dataset, instrumented=True)
        with request_span("test.ckpt"):
            instrumented.run(6)

        extra = {"job_key": "parity", "iteration": 6}
        p_bare = save_session_checkpoint(bare, tmp_path / "bare.ckpt.npz", extra=extra)
        p_inst = save_session_checkpoint(
            instrumented, tmp_path / "inst.ckpt.npz", extra=extra
        )
        with np.load(p_bare, allow_pickle=True) as a, np.load(
            p_inst, allow_pickle=True
        ) as b:
            assert sorted(a.files) == sorted(b.files)
            for key in a.files:
                if key == "__checkpoint__":
                    continue
                assert a[key].tobytes() == b[key].tobytes(), key
            header_a = json.loads(a["__checkpoint__"].tobytes().decode("utf-8"))
            header_b = json.loads(b["__checkpoint__"].tobytes().decode("utf-8"))
        for header in (header_a, header_b):
            header["state"]["session"].pop("phase_timings")
        assert header_a == header_b

    def test_instrumented_checkpoint_round_trip_is_bit_identical(
        self, binary_dataset, tmp_path
    ):
        """Save → load → save with the observer attached throughout:
        the second file's payload is byte-for-byte the first's."""
        from repro.io.checkpoint import load_session_checkpoint

        first = _nemo_session(binary_dataset, instrumented=True)
        first.run(6)
        p1 = save_session_checkpoint(first, tmp_path / "one.ckpt.npz", extra={"i": 6})

        restored = _nemo_session(binary_dataset, instrumented=True)
        with request_span("test.restore"):
            extra = load_session_checkpoint(restored, p1)
        assert extra == {"i": 6}
        p2 = save_session_checkpoint(restored, tmp_path / "two.ckpt.npz", extra={"i": 6})

        with np.load(p1, allow_pickle=True) as a, np.load(p2, allow_pickle=True) as b:
            assert sorted(a.files) == sorted(b.files)
            for key in a.files:
                assert a[key].tobytes() == b[key].tobytes(), key

    def test_state_dict_carries_no_obs_fields(self, binary_dataset):
        instrumented = _nemo_session(binary_dataset, instrumented=True)
        instrumented.run(3)
        state = instrumented.state_dict()
        for forbidden in ("observer", "refit_counts", "end_fit_counts",
                          "open_interval_seconds", "last_command_obs"):
            assert forbidden not in state
