"""Integration tests: full IDP sessions across the public API.

These exercise the complete pipeline the way the benchmarks do, on tiny
corpora, and assert the paper's *qualitative* claims where they are robust
enough to hold at test scale across seeds.
"""

import pytest

from repro import (
    NemoConfig,
    SimulatedUser,
    load_dataset,
    make_method,
    nemo_config,
    run_learning_curve,
    snorkel_config,
)
from repro.experiments.protocol import evaluate_method


@pytest.fixture(scope="module")
def amazon():
    return load_dataset("amazon", scale="tiny", seed=0)


@pytest.fixture(scope="module")
def sms():
    return load_dataset("sms", scale="tiny", seed=0)


class TestFullLoop:
    def test_quickstart_api(self, amazon):
        user = SimulatedUser(amazon, seed=0)
        session = NemoConfig().create_session(amazon, user, seed=0)
        score = session.run(10).test_score()
        assert 0.0 <= score <= 1.0
        assert len(session.lfs) >= 5

    def test_learning_curve_improves_over_prior(self, amazon):
        factory = make_method("snorkel")
        curve = run_learning_curve(factory(amazon, 3), n_iterations=25, eval_every=5)
        majority = max((amazon.test.y == 1).mean(), (amazon.test.y == -1).mean())
        assert max(curve.scores) > majority

    def test_nemo_beats_snorkel_on_average(self, amazon):
        n_seeds = 3
        nemo = evaluate_method(
            lambda ds, s: nemo_config().create_session(ds, SimulatedUser(ds, seed=s), seed=s),
            "nemo", amazon, n_iterations=25, eval_every=5, n_seeds=n_seeds,
        )
        snorkel = evaluate_method(
            lambda ds, s: snorkel_config().create_session(ds, SimulatedUser(ds, seed=s), seed=s),
            "snorkel", amazon, n_iterations=25, eval_every=5, n_seeds=n_seeds,
        )
        # The tiny test split has 30 examples (scores quantize to 1/30),
        # so this is a smoke-level sanity bound; the real comparison runs
        # at bench scale in benchmarks/bench_table2_end_to_end.py.
        assert nemo.summary_mean > snorkel.summary_mean - 0.10

    def test_every_table2_method_completes_a_short_run(self, amazon):
        for name in ("nemo", "snorkel", "snorkel-abs", "snorkel-dis",
                     "implyloss-l", "us", "bald", "iws-lse", "active-weasul"):
            method = make_method(name)(amazon, 0)
            curve = run_learning_curve(method, n_iterations=8, eval_every=4)
            assert len(curve.scores) == 2, name

    def test_f1_task_end_to_end(self, sms):
        user = SimulatedUser(sms, seed=0)
        session = nemo_config().create_session(sms, user, seed=0)
        session.run(15)
        score = session.test_score()
        assert 0.0 <= score <= 1.0

    def test_contextualizer_changes_outcomes(self, amazon):
        def run(cfg, seed):
            user = SimulatedUser(amazon, seed=seed)
            return cfg.create_session(amazon, user, seed=seed).run(15).test_score()

        ctx = NemoConfig(selector="random", contextualize=True, percentile=25.0,
                         tune_percentile=False)
        std = NemoConfig(selector="random", contextualize=False)
        # Same seeds => same LFs; only the learning pipeline differs.
        scores_ctx = [run(ctx, s) for s in range(3)]
        scores_std = [run(std, s) for s in range(3)]
        assert scores_ctx != scores_std

    def test_reproducibility_across_processes(self, amazon):
        user = SimulatedUser(amazon, seed=9)
        a = nemo_config().create_session(amazon, user, seed=9).run(12).test_score()
        user = SimulatedUser(amazon, seed=9)
        b = nemo_config().create_session(amazon, user, seed=9).run(12).test_score()
        assert a == b
