"""Failure-injection tests: the pipeline must degrade gracefully, not crash.

Each scenario plants a pathological condition — adversarial users, one-sided
LF sets, degenerate priors, empty candidate pools — and checks that every
stage (selection, label model, end model, evaluation) keeps well-defined
semantics.
"""

import numpy as np
import pytest

from repro.core.contextualizer import LFContextualizer
from repro.core.lf import PrimitiveLF
from repro.core.session import DataProgrammingSession, LFDeveloper
from repro.core.seu import SEUSelector
from repro.data import load_dataset
from repro.interactive.basic_selectors import RandomSelector
from repro.interactive.simulated_user import SimulatedUser
from repro.labelmodel.metal import MetalLabelModel


@pytest.fixture(scope="module")
def dataset():
    return load_dataset("amazon", scale="tiny", seed=0)


class AdversarialUser(LFDeveloper):
    """Always creates the LF with the *wrong* polarity for the dev example."""

    def __init__(self, dataset, seed=None):
        self.dataset = dataset
        self.rng = np.random.default_rng(seed)

    def create_lf(self, dev_index, state):
        primitives = state.family.primitives_in(dev_index)
        if primitives.size == 0:
            return None
        wrong_label = -int(self.dataset.train.y[dev_index])
        existing = {(lf.primitive_id, lf.label) for lf in state.lfs}
        fresh = [p for p in primitives if (int(p), wrong_label) not in existing]
        if not fresh:
            return None
        return state.family.make(int(self.rng.choice(fresh)), wrong_label)


class RefusingUser(LFDeveloper):
    """Never produces an LF (a user who cannot find any heuristic)."""

    def create_lf(self, dev_index, state):
        return None


class OnePolarityUser(SimulatedUser):
    """Only ever writes positive LFs (one-sided supervision)."""

    def create_lf(self, dev_index, state):
        lf = super().create_lf(dev_index, state)
        if lf is None or lf.label != 1:
            return None
        return lf


class TestAdversarialSupervision:
    def test_session_survives_always_wrong_lfs(self, dataset):
        session = DataProgrammingSession(
            dataset, RandomSelector(), AdversarialUser(dataset, seed=0), seed=0
        )
        session.run(12)
        assert len(session.lfs) > 0
        score = session.test_score()
        assert 0.0 <= score <= 1.0
        assert np.all(np.isfinite(session.soft_labels))

    def test_seu_survives_adversarial_user(self, dataset):
        session = DataProgrammingSession(
            dataset, SEUSelector(), AdversarialUser(dataset, seed=0), seed=0
        )
        session.run(12)
        assert 0.0 <= session.test_score() <= 1.0


class TestRefusals:
    def test_session_with_no_lfs_ever(self, dataset):
        session = DataProgrammingSession(dataset, RandomSelector(), RefusingUser(), seed=0)
        session.run(10)
        assert len(session.lfs) == 0
        assert session.iteration == 10
        # falls back to prior predictions
        preds = session.predict_test()
        assert set(np.unique(preds)) <= {-1, 1}

    def test_selected_pool_still_advances(self, dataset):
        session = DataProgrammingSession(dataset, RandomSelector(), RefusingUser(), seed=0)
        session.run(10)
        assert len(session.selected) == 10


class TestOneSidedSupervision:
    def test_single_polarity_set_stays_finite(self, dataset):
        session = DataProgrammingSession(
            dataset, RandomSelector(), OnePolarityUser(dataset, seed=0), seed=0
        )
        session.run(15)
        assert all(lf.label == 1 for lf in session.lfs)
        assert np.all(np.isfinite(session.soft_labels))
        assert np.all(np.isfinite(session.proxy_proba))
        assert 0.0 <= session.test_score() <= 1.0

    def test_seu_cold_start_holds_under_one_polarity(self, dataset):
        # SEU never leaves cold start when only one polarity exists, so it
        # keeps selecting randomly instead of collapsing onto one class.
        selector = SEUSelector(warmup=3)
        session = DataProgrammingSession(
            dataset, selector, OnePolarityUser(dataset, seed=0), seed=0
        )
        session.run(10)
        assert selector._in_cold_start(session.build_state())


class TestExhaustedPool:
    def test_selection_returns_none_when_pool_empty(self, dataset):
        session = DataProgrammingSession(
            dataset, RandomSelector(), SimulatedUser(dataset, seed=0), seed=0
        )
        session.selected.update(range(dataset.train.n))
        n_before = session.iteration
        session.step()
        assert session.iteration == n_before + 1
        assert len(session.lfs) == 0


class TestDegenerateLabelMatrices:
    def test_metal_on_all_abstain_matrix(self):
        L = np.zeros((40, 3), dtype=np.int8)
        model = MetalLabelModel(class_prior=0.3).fit(L)
        proba = model.predict_proba(L)
        np.testing.assert_allclose(proba, model.prior_)

    def test_metal_on_single_example(self):
        L = np.array([[1, -1, 0]], dtype=np.int8)
        proba = MetalLabelModel().fit_predict_proba(L)
        assert np.all(np.isfinite(proba))

    def test_metal_on_duplicate_lfs(self):
        rng = np.random.default_rng(0)
        col = rng.choice([-1, 0, 1], size=60)
        L = np.stack([col] * 5, axis=1)  # five identical LFs
        proba = MetalLabelModel().fit_predict_proba(L)
        assert np.all(np.isfinite(proba))
        assert np.all((proba >= 0) & (proba <= 1))

    def test_contextualizer_percentile_zero(self, dataset):
        # radius = 0th percentile: only the nearest example(s) keep votes
        from repro.core.lineage import LineageStore
        from repro.labelmodel.matrix import apply_lfs

        family_lf = PrimitiveLF(primitive_id=0, primitive=dataset.primitive_names[0], label=1)
        lineage = LineageStore(dataset)
        covered = np.flatnonzero(
            np.asarray(dataset.train.B[:, 0].todense()).ravel()
        )
        if covered.size == 0:
            pytest.skip("first primitive covers nothing at this scale")
        lineage.add(family_lf, int(covered[0]), 0)
        L = apply_lfs([family_lf], dataset.train.B)
        refined = LFContextualizer(percentile=0.0).refine(L, lineage)
        assert (refined != 0).sum() <= (L != 0).sum()
        # the development point itself is at distance 0 and is kept
        assert refined[covered[0], 0] == L[covered[0], 0]


class TestExtremePriors:
    @pytest.mark.parametrize("prior", [0.02, 0.98])
    def test_metal_with_extreme_prior_stays_finite(self, prior):
        rng = np.random.default_rng(0)
        y = np.where(rng.random(300) < prior, 1, -1)
        L = np.zeros((300, 4), dtype=np.int8)
        for j in range(4):
            fires = rng.random(300) < 0.5
            correct = rng.random(300) < 0.8
            L[fires, j] = np.where(correct[fires], y[fires], -y[fires])
        model = MetalLabelModel(class_prior=prior)
        proba = model.fit_predict_proba(L)
        assert np.all(np.isfinite(proba))
        assert np.all((proba >= 0) & (proba <= 1))

    def test_prior_at_bounds_rejected(self):
        with pytest.raises(ValueError, match="class_prior"):
            MetalLabelModel(class_prior=0.0)
        with pytest.raises(ValueError, match="class_prior"):
            MetalLabelModel(class_prior=1.0)


class TestMulticlassFailureModes:
    def test_mc_session_with_refusing_user(self):
        from repro.multiclass import MCRandomSelector, MultiClassSession, make_topics_dataset
        from repro.multiclass.session import MCLFDeveloper

        class MCRefusingUser(MCLFDeveloper):
            def create_lf(self, dev_index, state):
                return None

        ds = make_topics_dataset(n_docs=200, seed=0, vocab_scale=4)
        session = MultiClassSession(ds, MCRandomSelector(), MCRefusingUser(), seed=0)
        session.run(6)
        assert len(session.lfs) == 0
        assert 0.0 <= session.test_score() <= 1.0

    def test_mc_adversarial_user(self):
        from repro.multiclass import MCRandomSelector, MultiClassSession, make_topics_dataset
        from repro.multiclass.session import MCLFDeveloper

        class MCAdversarialUser(MCLFDeveloper):
            def __init__(self, dataset):
                self.dataset = dataset
                self.rng = np.random.default_rng(0)

            def create_lf(self, dev_index, state):
                primitives = state.family.primitives_in(dev_index)
                if primitives.size == 0:
                    return None
                true = int(self.dataset.train.y[dev_index])
                wrong = (true + 1) % state.n_classes
                return state.family.make(int(self.rng.choice(primitives)), wrong)

        ds = make_topics_dataset(n_docs=200, seed=0, vocab_scale=4)
        session = MultiClassSession(ds, MCRandomSelector(), MCAdversarialUser(ds), seed=0)
        session.run(8)
        assert np.all(np.isfinite(session.soft_labels))
        assert 0.0 <= session.test_score() <= 1.0

    def test_mc_dawid_skene_all_abstain(self):
        from repro.multiclass.dawid_skene import MCDawidSkeneModel

        L = np.full((30, 3), -1, dtype=np.int8)
        model = MCDawidSkeneModel(n_classes=3).fit(L)
        proba = model.predict_proba(L)
        np.testing.assert_allclose(proba, np.tile(model.priors_, (30, 1)))
