"""Seeded-transcript golden tests: unified code vs the pre-refactor mirrors.

The fixtures in ``tests/golden/*.json`` were captured from the
pre-unification binary and multiclass implementations (see
``tools/gen_golden_parity.py``).  These tests replay the exact same seeded
configurations through the cardinality-generic contextualizer / simulated
users / selectors / SEU and assert the transcripts match bit-for-bit on
the discrete record (selected dev indices, developed LFs, the tuned
percentile) and to float tolerance on the posteriors.

A mismatch here means the refactor changed behaviour — either fix the
regression or, for an *intentional* change, regenerate the fixtures with
the generator script and document the reconciliation in CHANGES.md.
"""

import json
from pathlib import Path

import numpy as np
import pytest

GOLDEN_DIR = Path(__file__).resolve().parent.parent / "golden"


def load_golden(name):
    return json.loads((GOLDEN_DIR / name).read_text())


class RecordingSelector:
    def __init__(self, inner):
        self.inner = inner
        self.choices = []
        self.name = getattr(inner, "name", "recording")

    def select(self, state):
        idx = self.inner.select(state)
        self.choices.append(-1 if idx is None else int(idx))
        return idx


def assert_matches(session, rec, expected):
    assert rec.choices == expected["selected"]
    assert [[int(lf.primitive_id), int(lf.label)] for lf in session.lfs] == expected["lfs"]
    assert session.active_percentile_ == expected["active_percentile"]
    assert session.test_score() == pytest.approx(expected["test_score"], abs=1e-9)
    np.testing.assert_allclose(
        session.soft_labels.ravel(),
        np.asarray(expected["soft_labels"]),
        atol=1e-6,
    )


@pytest.fixture(scope="module")
def binary_dataset():
    from repro.data import load_dataset

    return load_dataset("amazon", scale="tiny", seed=0)


@pytest.fixture(scope="module")
def mc_dataset():
    from repro.multiclass import make_topics_dataset

    return make_topics_dataset(n_docs=500, seed=0, vocab_scale=6)


class TestBinaryGolden:
    @pytest.fixture(scope="class")
    def golden(self):
        return load_golden("binary_session.json")

    def test_nemo_transcript(self, binary_dataset, golden):
        from repro.core.contextualizer import LFContextualizer, PercentileTuner
        from repro.core.session import DataProgrammingSession
        from repro.core.seu import SEUSelector
        from repro.interactive.simulated_user import SimulatedUser

        rec = RecordingSelector(SEUSelector())
        session = DataProgrammingSession(
            binary_dataset,
            rec,
            SimulatedUser(binary_dataset, seed=1),
            contextualizer=LFContextualizer(),
            percentile_tuner=PercentileTuner(metric=binary_dataset.metric),
            seed=0,
        )
        session.run(12)
        assert_matches(session, rec, golden["nemo"])

    @pytest.mark.parametrize("name", ["random", "abstain", "disagree"])
    def test_basic_selector_transcripts(self, binary_dataset, golden, name):
        from repro.core.session import DataProgrammingSession
        from repro.interactive.basic_selectors import make_basic_selector
        from repro.interactive.simulated_user import SimulatedUser

        rec = RecordingSelector(make_basic_selector(name))
        session = DataProgrammingSession(
            binary_dataset, rec, SimulatedUser(binary_dataset, seed=2), seed=3
        )
        session.run(8)
        assert_matches(session, rec, golden[name])

    def test_noisy_user_transcript(self, binary_dataset, golden):
        from repro.core.session import DataProgrammingSession
        from repro.core.seu import SEUSelector
        from repro.interactive.simulated_user import NoisyUser

        rec = RecordingSelector(
            SEUSelector(user_model="thresholded", utility="no-correctness")
        )
        session = DataProgrammingSession(
            binary_dataset,
            rec,
            NoisyUser(binary_dataset, mislabel_rate=0.3, judgment_noise=0.2, seed=4),
            seed=5,
        )
        session.run(10)
        assert_matches(session, rec, golden["noisy"])


class TestMulticlassGolden:
    @pytest.fixture(scope="class")
    def golden(self):
        return load_golden("multiclass_session.json")

    def test_nemo_transcript(self, mc_dataset, golden):
        from repro.multiclass.contextualizer import MCContextualizer, MCPercentileTuner
        from repro.multiclass.session import MultiClassSession
        from repro.multiclass.seu import MCSEUSelector
        from repro.multiclass.simulated_user import MCSimulatedUser

        rec = RecordingSelector(MCSEUSelector())
        session = MultiClassSession(
            mc_dataset,
            rec,
            MCSimulatedUser(mc_dataset, seed=1),
            contextualizer=MCContextualizer(n_classes=mc_dataset.n_classes),
            percentile_tuner=MCPercentileTuner(),
            seed=0,
        )
        session.run(12)
        assert_matches(session, rec, golden["nemo"])

    @pytest.mark.parametrize("name", ["random", "abstain", "disagree", "uncertainty"])
    def test_basic_selector_transcripts(self, mc_dataset, golden, name):
        from repro.multiclass.selection import (
            MCAbstainSelector,
            MCDisagreeSelector,
            MCRandomSelector,
            MCUncertaintySelector,
        )
        from repro.multiclass.session import MultiClassSession
        from repro.multiclass.simulated_user import MCSimulatedUser

        cls = {
            "random": MCRandomSelector,
            "abstain": MCAbstainSelector,
            "disagree": MCDisagreeSelector,
            "uncertainty": MCUncertaintySelector,
        }[name]
        rec = RecordingSelector(cls())
        session = MultiClassSession(
            mc_dataset, rec, MCSimulatedUser(mc_dataset, seed=2), seed=3
        )
        session.run(8)
        assert_matches(session, rec, golden[name])

    def test_noisy_user_transcript(self, mc_dataset, golden):
        from repro.multiclass.session import MultiClassSession
        from repro.multiclass.seu import MCSEUSelector
        from repro.multiclass.simulated_user import MCNoisyUser

        rec = RecordingSelector(
            MCSEUSelector(user_model="thresholded", utility="no-correctness")
        )
        session = MultiClassSession(
            mc_dataset,
            rec,
            MCNoisyUser(mc_dataset, mislabel_rate=0.3, judgment_noise=0.2, seed=4),
            seed=5,
        )
        session.run(10)
        assert_matches(session, rec, golden["noisy"])
